//! The object store.
//!
//! [`Oss`] is an in-process object store with the interface and cost profile
//! of a cloud OSS: flat keyspace, whole-object PUT, full and range GET,
//! DELETE, prefix LIST. All payloads are [`Bytes`], so GETs are zero-copy
//! clones of the stored buffer (the *network model* is where the cost lives,
//! not memcpy).
//!
//! # Batched I/O plane
//!
//! Multi-object sweeps (reverse dedup, GC, compaction, space accounting) go
//! through the `*_many` methods of [`ObjectStore`]: per-item `Result`s in
//! input order, driven in [`Oss`] by a bounded worker pool so up to
//! `channels` requests overlap their round-trip latency (§III-A: OSS
//! throughput comes from request concurrency). Fault decisions are drawn
//! sequentially in input order *before* the fan-out starts, so seeded fault
//! schedules and all byte/request counters are identical to the equivalent
//! sequential loop — batching changes scheduling, not which bytes move.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use slim_types::{Result, SlimError};

use crate::fault::{Corruption, FaultDecision, FaultErrorKind, FaultPlan, FaultState};
use crate::metrics::OssMetrics;
use crate::network::{ChannelPool, NetworkModel};

/// Default bound on the worker fan-out of batched [`Oss`] operations,
/// matching the channel count of [`NetworkModel::oss_like`].
pub const DEFAULT_BATCH_WORKERS: usize = 64;

/// Object-store interface used by every SLIMSTORE component.
///
/// Trait rather than concrete type so tests can interpose wrappers and so a
/// real S3/OSS client could be dropped in behind the same API.
pub trait ObjectStore: Send + Sync {
    /// Store an object, replacing any existing value.
    fn put(&self, key: &str, value: Bytes) -> Result<()>;

    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Fetch a whole object *without* any redundancy-plane healing: always
    /// the primary's current bytes, corrupt or not. Integrity sweeps and
    /// quarantine moves read through this so detection stays observable;
    /// self-healing wrappers override it to expose the raw primary, and for
    /// every other store it is exactly [`ObjectStore::get`].
    fn get_raw(&self, key: &str) -> Result<Bytes> {
        self.get(key)
    }

    /// Fetch `[start, start+len)` of an object.
    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes>;

    /// Delete an object (idempotent; deleting a missing key is not an error,
    /// matching S3/OSS semantics).
    fn delete(&self, key: &str) -> Result<()>;

    /// Whether an object exists. Free of network cost in this simulation
    /// (real systems use HEAD; SLIMSTORE only calls this on metadata paths),
    /// but fallible like any other request — HEAD hits the same endpoint
    /// that PUT/GET do, so fault plans cover it too.
    fn exists(&self, key: &str) -> Result<bool>;

    /// Object length in bytes, if it exists.
    fn len(&self, key: &str) -> Result<Option<u64>>;

    /// Fetch many whole objects. Item `i` of the result is the outcome for
    /// `keys[i]`; every item carries its own `Result`, so one missing object
    /// does not poison the rest of the batch.
    ///
    /// The default implementation is the equivalent sequential loop; stores
    /// that model network latency override it with a bounded parallel
    /// fan-out carrying identical per-item semantics.
    fn get_many(&self, keys: &[String]) -> Vec<Result<Bytes>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Fetch many object ranges (`(key, start, len)` per item), with the
    /// same per-item contract as [`ObjectStore::get_many`].
    fn get_range_many(&self, ranges: &[(String, u64, u64)]) -> Vec<Result<Bytes>> {
        ranges
            .iter()
            .map(|(key, start, len)| self.get_range(key, *start, *len))
            .collect()
    }

    /// Query many object lengths, with the same per-item contract as
    /// [`ObjectStore::get_many`].
    fn len_many(&self, keys: &[String]) -> Vec<Result<Option<u64>>> {
        keys.iter().map(|k| self.len(k)).collect()
    }

    /// Delete many objects (idempotent per item), with the same per-item
    /// contract as [`ObjectStore::get_many`].
    fn delete_many(&self, keys: &[String]) -> Vec<Result<()>> {
        keys.iter().map(|k| self.delete(k)).collect()
    }

    /// All keys with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Traffic counters, if this store keeps them (the simulated OSS does;
    /// a plain wrapper may not). Jobs use snapshot deltas to attribute
    /// network time.
    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        None
    }
}

struct Inner {
    objects: RwLock<BTreeMap<String, Bytes>>,
    network: NetworkModel,
    channels: ChannelPool,
    metrics: OssMetrics,
    faults: FaultState,
    batch_cap: AtomicUsize,
    /// Number of simulated service endpoints (≥ 1). Endpoints share the
    /// object map; they only differentiate fault injection and health
    /// accounting (see [`crate::endpoint`]).
    endpoints: AtomicUsize,
    /// Round-robin cursor for unpinned operations.
    rr: AtomicU64,
}

/// The simulated OSS. Cheap to clone (shared handle).
///
/// ```
/// use slim_oss::{ObjectStore, Oss};
/// let oss = Oss::in_memory();
/// oss.put("bucket/key", bytes::Bytes::from_static(b"payload")).unwrap();
/// assert_eq!(oss.get_range("bucket/key", 0, 3).unwrap().as_ref(), b"pay");
/// assert_eq!(oss.metrics().snapshot().get_requests, 1);
/// ```
#[derive(Clone)]
pub struct Oss {
    inner: Arc<Inner>,
}

impl Oss {
    /// An OSS with the given network model.
    pub fn new(network: NetworkModel) -> Self {
        Oss::build(network, OssMetrics::default())
    }

    /// An OSS whose traffic counters are registered under `scope`
    /// (canonically an `"oss"` scope of a shared telemetry registry), so
    /// they appear directly in [`slim_telemetry::Registry::snapshot`]s
    /// alongside every other component's metrics.
    pub fn with_telemetry(network: NetworkModel, scope: &slim_telemetry::Scope) -> Self {
        Oss::build(network, OssMetrics::new(scope))
    }

    fn build(network: NetworkModel, metrics: OssMetrics) -> Self {
        let channels = ChannelPool::new(network.channels);
        Oss {
            inner: Arc::new(Inner {
                objects: RwLock::new(BTreeMap::new()),
                network,
                channels,
                metrics,
                faults: FaultState::default(),
                batch_cap: AtomicUsize::new(DEFAULT_BATCH_WORKERS),
                endpoints: AtomicUsize::new(1),
                rr: AtomicU64::new(0),
            }),
        }
    }

    /// A free (no latency) OSS for unit tests.
    pub fn in_memory() -> Self {
        Oss::new(NetworkModel::instant())
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &OssMetrics {
        &self.inner.metrics
    }

    /// The network model in force.
    pub fn network(&self) -> &NetworkModel {
        &self.inner.network
    }

    /// Bound the worker fan-out of batched (`*_many`) operations. `1`
    /// forces the sequential path through the same code (the A/B knob for
    /// measuring what batching buys); the effective fan-out is always
    /// additionally clamped to the batch size and the network model's
    /// channel count.
    pub fn set_batch_workers(&self, cap: usize) {
        self.inner.batch_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Current fan-out bound of batched operations.
    pub fn batch_workers(&self) -> usize {
        self.inner.batch_cap.load(Ordering::Relaxed)
    }

    /// Model `n` distinct service endpoints (clamped to at least one).
    /// Endpoints share the object map — this only affects which endpoint a
    /// request resolves to for fault injection (endpoint-scoped plans) and
    /// for the health/hedging plane. With the default of one endpoint,
    /// behaviour is bit-identical to the pre-endpoint store.
    pub fn set_endpoints(&self, n: usize) {
        self.inner.endpoints.store(n.max(1), Ordering::Relaxed);
    }

    /// Number of simulated endpoints.
    pub fn endpoints(&self) -> usize {
        self.inner.endpoints.load(Ordering::Relaxed)
    }

    /// The endpoint serving the next operation on this thread: the ambient
    /// pin ([`crate::endpoint::pin`]) when set, round-robin otherwise.
    /// Always 0 while a single endpoint is configured — the round-robin
    /// cursor is untouched, so enabling endpoints later starts clean.
    fn resolve_endpoint(&self) -> usize {
        let n = self.inner.endpoints.load(Ordering::Relaxed);
        if n <= 1 {
            return 0;
        }
        match crate::endpoint::pinned() {
            Some(pin) => pin % n,
            None => (self.inner.rr.fetch_add(1, Ordering::Relaxed) as usize) % n,
        }
    }

    /// Arm fault injection, replacing any armed plans.
    pub fn inject_fault(&self, plan: FaultPlan) {
        self.inner.faults.arm(plan);
    }

    /// Arm an additional fault plan alongside the already-armed ones (e.g.
    /// latency plus transient failures).
    pub fn inject_fault_also(&self, plan: FaultPlan) {
        self.inner.faults.arm_also(plan);
    }

    /// Disarm fault injection.
    pub fn clear_faults(&self) {
        self.inner.faults.clear();
    }

    /// Total bytes currently stored (sum of object sizes). This is the
    /// "occupied space" series of Fig 9 / Fig 10(c).
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .objects
            .read()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Total bytes stored under a key prefix.
    pub fn stored_bytes_prefix(&self, prefix: &str) -> u64 {
        self.inner
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Number of objects stored.
    pub fn object_count(&self) -> usize {
        self.inner.objects.read().len()
    }

    /// Apply a pre-drawn fault decision: sleep injected latency, account
    /// it, and map an injected failure onto its error kind.
    fn apply_fault(&self, op: &str, key: &str, decision: FaultDecision) -> Result<()> {
        if !decision.delay.is_zero() {
            std::thread::sleep(decision.delay);
            self.inner.metrics.record_injected_delay(decision.delay);
        }
        let Some(kind) = decision.error else {
            return Ok(());
        };
        self.inner.metrics.record_injected_fault();
        Err(match kind {
            FaultErrorKind::Permanent => SlimError::InjectedFault(format!("{op} {key}")),
            FaultErrorKind::Transient => SlimError::Transient(format!("injected: {op} {key}")),
            FaultErrorKind::Throttled => SlimError::Throttled(format!("injected: {op} {key}")),
        })
    }

    fn check_fault(&self, op: &str, key: &str) -> Result<()> {
        let decision = self.inner.faults.decide_at(key, self.resolve_endpoint());
        self.apply_fault(op, key, decision)
    }

    /// Like [`Oss::check_fault`], but hands back any payload corruption the
    /// decision carries so read paths can apply it to the returned bytes.
    fn check_read_fault(&self, op: &str, key: &str) -> Result<Option<Corruption>> {
        let decision = self.inner.faults.decide_at(key, self.resolve_endpoint());
        self.apply_fault(op, key, decision)?;
        Ok(decision.corruption)
    }

    /// Apply an injected read corruption (if any) to an outgoing payload.
    fn mangle(&self, value: Bytes, corruption: Option<Corruption>) -> Bytes {
        let Some(corruption) = corruption else {
            return value;
        };
        let mut buf = value.to_vec();
        corruption.apply(&mut buf);
        self.inner.metrics.record_injected_corruption();
        Bytes::from(buf)
    }

    /// Charge latency + transfer time for `bytes`, bounded by channel
    /// availability; returns elapsed wall time.
    fn charge(&self, bytes: u64) -> std::time::Duration {
        let start = Instant::now();
        if self.inner.network.is_instant() {
            return start.elapsed();
        }
        let _channel = self.inner.channels.acquire();
        let cost = self.inner.network.request_latency + self.inner.network.transfer_time(bytes);
        std::thread::sleep(cost);
        start.elapsed()
    }

    fn get_after_fault(&self, key: &str, corruption: Option<Corruption>) -> Result<Bytes> {
        let value = self
            .inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| SlimError::ObjectNotFound(key.to_string()))?;
        let value = self.mangle(value, corruption);
        let elapsed = self.charge(value.len() as u64);
        self.inner.metrics.record_get(value.len() as u64, elapsed);
        Ok(value)
    }

    fn get_range_after_fault(
        &self,
        key: &str,
        start: u64,
        len: u64,
        corruption: Option<Corruption>,
    ) -> Result<Bytes> {
        let value = self
            .inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| SlimError::ObjectNotFound(key.to_string()))?;
        // `start + len` can exceed u64::MAX, and a wrapped `end` would pass
        // the bounds check below.
        let end = start
            .checked_add(len)
            .filter(|end| *end <= value.len() as u64);
        let Some(end) = end else {
            return Err(SlimError::RangeOutOfBounds {
                key: key.to_string(),
                start,
                end: start.saturating_add(len),
                len: value.len() as u64,
            });
        };
        let slice = self.mangle(value.slice(start as usize..end as usize), corruption);
        let elapsed = self.charge(slice.len() as u64);
        self.inner.metrics.record_get(slice.len() as u64, elapsed);
        Ok(slice)
    }

    fn len_after_fault(&self, key: &str) -> Result<Option<u64>> {
        Ok(self.inner.objects.read().get(key).map(|v| v.len() as u64))
    }

    fn delete_after_fault(&self, key: &str) -> Result<()> {
        let elapsed = self.charge(0);
        self.inner.metrics.record_delete(elapsed);
        self.inner.objects.write().remove(key);
        Ok(())
    }

    /// Execute a homogeneous batch with bounded worker fan-out, preserving
    /// exact sequential semantics per item.
    ///
    /// Fault decisions are drawn sequentially in input order *before* any
    /// worker starts: armed plans depend only on the key and the per-plan
    /// operation ordinal, so the batch observes the same fault schedule the
    /// equivalent sequential loop would, regardless of worker interleaving.
    fn run_batch<I, T>(
        &self,
        op: &str,
        items: &[I],
        key_of: impl Fn(&I) -> &str + Sync,
        exec: impl Fn(&I, Option<Corruption>) -> Result<T> + Sync,
    ) -> Vec<Result<T>>
    where
        I: Sync,
        T: Send,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let n = items.len();
        // Endpoints resolve at draw time too (the submitting thread's pin
        // applies to the whole batch; otherwise round-robin per item), so
        // the schedule matches the equivalent sequential loop exactly.
        let decisions: Vec<FaultDecision> = items
            .iter()
            .map(|item| {
                self.inner
                    .faults
                    .decide_at(key_of(item), self.resolve_endpoint())
            })
            .collect();
        let workers = n
            .min(self.inner.network.channels.max(1))
            .min(self.inner.batch_cap.load(Ordering::Relaxed))
            .max(1);
        self.inner.metrics.record_batch(n, workers);
        if workers <= 1 {
            return items
                .iter()
                .zip(&decisions)
                .map(|(item, decision)| {
                    self.apply_fault(op, key_of(item), *decision)?;
                    exec(item, decision.corruption)
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = &items[i];
                    let result = self
                        .apply_fault(op, key_of(item), decisions[i])
                        .and_then(|()| exec(item, decisions[i].corruption));
                    *slots[i].lock() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("batch worker filled every slot"))
            .collect()
    }
}

impl ObjectStore for Oss {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.check_fault("put", key)?;
        let elapsed = self.charge(value.len() as u64);
        self.inner.metrics.record_put(value.len() as u64, elapsed);
        self.inner.objects.write().insert(key.to_string(), value);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let corruption = self.check_read_fault("get", key)?;
        self.get_after_fault(key, corruption)
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        let corruption = self.check_read_fault("get", key)?;
        self.get_range_after_fault(key, start, len, corruption)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.check_fault("delete", key)?;
        self.delete_after_fault(key)
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.check_fault("head", key)?;
        Ok(self.inner.objects.read().contains_key(key))
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        self.check_fault("head", key)?;
        self.len_after_fault(key)
    }

    fn get_many(&self, keys: &[String]) -> Vec<Result<Bytes>> {
        self.run_batch(
            "get",
            keys,
            |k| k.as_str(),
            |k, corruption| self.get_after_fault(k, corruption),
        )
    }

    fn get_range_many(&self, ranges: &[(String, u64, u64)]) -> Vec<Result<Bytes>> {
        self.run_batch(
            "get",
            ranges,
            |(key, _, _)| key.as_str(),
            |(key, start, len), corruption| {
                self.get_range_after_fault(key, *start, *len, corruption)
            },
        )
    }

    fn len_many(&self, keys: &[String]) -> Vec<Result<Option<u64>>> {
        self.run_batch("head", keys, |k| k.as_str(), |k, _| self.len_after_fault(k))
    }

    fn delete_many(&self, keys: &[String]) -> Vec<Result<()>> {
        self.run_batch(
            "delete",
            keys,
            |k| k.as_str(),
            |k, _| self.delete_after_fault(k),
        )
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        Some(self.inner.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let oss = Oss::in_memory();
        oss.put("a/b", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(oss.get("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert!(oss.exists("a/b").unwrap());
        assert_eq!(oss.len("a/b").unwrap(), Some(5));
        assert_eq!(oss.object_count(), 1);
        assert_eq!(oss.stored_bytes(), 5);
    }

    #[test]
    fn get_missing_is_error() {
        let oss = Oss::in_memory();
        assert!(matches!(oss.get("nope"), Err(SlimError::ObjectNotFound(_))));
    }

    #[test]
    fn range_reads() {
        let oss = Oss::in_memory();
        oss.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(
            oss.get_range("obj", 2, 3).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(oss.get_range("obj", 0, 10).unwrap().len(), 10);
        assert!(matches!(
            oss.get_range("obj", 5, 6),
            Err(SlimError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn range_read_overflow_is_rejected() {
        // Regression: `start + len` used to be computed with unchecked
        // addition — a panic in debug builds, and in release a wrapped `end`
        // below the object length that passed the bounds check and sliced
        // with start > end.
        let oss = Oss::in_memory();
        oss.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        match oss.get_range("obj", u64::MAX - 2, 5) {
            Err(SlimError::RangeOutOfBounds {
                start, end, len, ..
            }) => {
                assert_eq!(start, u64::MAX - 2);
                assert_eq!(end, u64::MAX, "end saturates instead of wrapping");
                assert_eq!(len, 10);
            }
            other => panic!("expected RangeOutOfBounds, got {other:?}"),
        }
        // A huge start with a small, non-overflowing len is still plain OOB.
        assert!(matches!(
            oss.get_range("obj", u64::MAX - 2, 1),
            Err(SlimError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn delete_is_idempotent() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.delete("k").unwrap();
        assert!(!oss.exists("k").unwrap());
        oss.delete("k").unwrap();
    }

    #[test]
    fn list_respects_prefix_and_order() {
        let oss = Oss::in_memory();
        for k in ["b/2", "a/1", "b/1", "c"] {
            oss.put(k, Bytes::new()).unwrap();
        }
        assert_eq!(oss.list("b/"), vec!["b/1".to_string(), "b/2".to_string()]);
        assert_eq!(oss.list(""), vec!["a/1", "b/1", "b/2", "c"]);
        assert!(oss.list("zz").is_empty());
    }

    #[test]
    fn metrics_count_traffic() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from(vec![0u8; 100])).unwrap();
        oss.get("k").unwrap();
        oss.get_range("k", 0, 10).unwrap();
        let s = oss.metrics().snapshot();
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.get_requests, 2);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 110);
    }

    #[test]
    fn fault_injection_fails_operations() {
        let oss = Oss::in_memory();
        oss.put("containers/1", Bytes::from_static(b"x")).unwrap();
        oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
        assert!(matches!(
            oss.get("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        // Other keys unaffected.
        oss.put("recipes/1", Bytes::from_static(b"y")).unwrap();
        oss.clear_faults();
        oss.get("containers/1").unwrap();
    }

    #[test]
    fn metadata_probes_respect_faults() {
        let oss = Oss::in_memory();
        oss.put("containers/1", Bytes::from_static(b"x")).unwrap();
        oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
        assert!(matches!(
            oss.exists("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        assert!(matches!(
            oss.len("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        assert!(oss.exists("recipes/other").is_ok());
        assert_eq!(oss.metrics().snapshot().injected_faults, 2);
        oss.clear_faults();
        assert!(oss.exists("containers/1").unwrap());
        assert_eq!(oss.len("containers/1").unwrap(), Some(1));
    }

    #[test]
    fn transient_and_throttle_faults_map_to_retryable_errors() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 1.0,
            seed: 3,
        });
        let err = oss.get("k").unwrap_err();
        assert!(matches!(err, SlimError::Transient(_)));
        assert!(err.is_retryable());
        oss.inject_fault(FaultPlan::Throttle { every_nth: 1 });
        let err = oss.get("k").unwrap_err();
        assert!(matches!(err, SlimError::Throttled(_)));
        assert!(err.is_retryable());
        oss.clear_faults();
        oss.get("k").unwrap();
    }

    #[test]
    fn latency_plan_charges_injected_delay() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::Latency {
            prefix: String::new(),
            delay: std::time::Duration::from_millis(3),
        });
        let t0 = Instant::now();
        oss.get("k").unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(3));
        let s = oss.metrics().snapshot();
        assert!(s.injected_delay >= std::time::Duration::from_millis(3));
        assert_eq!(s.injected_faults, 0);
    }

    #[test]
    fn stored_bytes_prefix_accounts_correctly() {
        let oss = Oss::in_memory();
        oss.put("containers/1", Bytes::from(vec![0u8; 30])).unwrap();
        oss.put("containers/2", Bytes::from(vec![0u8; 20])).unwrap();
        oss.put("recipes/1", Bytes::from(vec![0u8; 7])).unwrap();
        assert_eq!(oss.stored_bytes_prefix("containers/"), 50);
        assert_eq!(oss.stored_bytes_prefix("recipes/"), 7);
        assert_eq!(oss.stored_bytes(), 57);
    }

    #[test]
    fn network_latency_is_charged() {
        let model = NetworkModel {
            request_latency: std::time::Duration::from_millis(5),
            channel_bandwidth: u64::MAX,
            channels: 4,
        };
        let oss = Oss::new(model);
        let t0 = Instant::now();
        oss.put("k", Bytes::from_static(b"x")).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        let s = oss.metrics().snapshot();
        assert!(s.net_time >= std::time::Duration::from_millis(5));
    }

    fn batch_keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("batch/{i:03}")).collect()
    }

    #[test]
    fn get_many_preserves_input_order_and_per_item_errors() {
        let oss = Oss::in_memory();
        let keys = batch_keys(10);
        for (i, k) in keys.iter().enumerate() {
            if i != 4 && i != 7 {
                oss.put(k, Bytes::from(vec![i as u8; i + 1])).unwrap();
            }
        }
        let results = oss.get_many(&keys);
        assert_eq!(results.len(), keys.len());
        for (i, r) in results.iter().enumerate() {
            if i == 4 || i == 7 {
                match r {
                    Err(SlimError::ObjectNotFound(k)) => assert_eq!(k, &keys[i]),
                    other => panic!("item {i}: expected ObjectNotFound, got {other:?}"),
                }
            } else {
                assert_eq!(r.as_ref().unwrap(), &Bytes::from(vec![i as u8; i + 1]));
            }
        }
        // Same counters as ten sequential gets: 8 hits, 2 misses.
        let s = oss.metrics().snapshot();
        assert_eq!(s.get_requests, 8);
    }

    #[test]
    fn len_and_delete_many_cover_the_batch() {
        let oss = Oss::in_memory();
        let keys = batch_keys(6);
        for k in &keys[..4] {
            oss.put(k, Bytes::from_static(b"xy")).unwrap();
        }
        let lens = oss.len_many(&keys);
        assert!(lens[..4].iter().all(|l| *l.as_ref().unwrap() == Some(2)));
        assert!(lens[4..].iter().all(|l| l.as_ref().unwrap().is_none()));
        for r in oss.delete_many(&keys) {
            r.unwrap(); // missing keys delete idempotently
        }
        assert_eq!(oss.object_count(), 0);
        assert_eq!(oss.metrics().snapshot().delete_requests, 6);
    }

    #[test]
    fn get_range_many_matches_sequential_ranges() {
        let oss = Oss::in_memory();
        oss.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        let ranges: Vec<(String, u64, u64)> = vec![
            ("obj".into(), 0, 4),
            ("obj".into(), 4, 6),
            ("obj".into(), 9, 5), // out of bounds
            ("missing".into(), 0, 1),
        ];
        let results = oss.get_range_many(&ranges);
        assert_eq!(results[0].as_ref().unwrap(), &Bytes::from_static(b"0123"));
        assert_eq!(results[1].as_ref().unwrap(), &Bytes::from_static(b"456789"));
        assert!(matches!(
            results[2],
            Err(SlimError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(results[3], Err(SlimError::ObjectNotFound(_))));
    }

    #[test]
    fn batch_faults_follow_sequential_schedule() {
        // The same seeded plan must fail the same batch positions whether
        // the batch runs fanned out or item-by-item.
        let plan = |oss: &Oss| {
            oss.inject_fault(FaultPlan::TransientProb {
                prefix: "batch/".into(),
                prob: 0.5,
                seed: 0xabcd,
            })
        };
        let keys = batch_keys(32);
        let seed = |oss: &Oss| {
            for k in &keys {
                oss.put(k, Bytes::from_static(b"v")).unwrap();
            }
        };
        let batched = Oss::in_memory();
        seed(&batched);
        plan(&batched);
        let b: Vec<bool> = batched.get_many(&keys).iter().map(|r| r.is_ok()).collect();
        let sequential = Oss::in_memory();
        seed(&sequential);
        plan(&sequential);
        let s: Vec<bool> = keys.iter().map(|k| sequential.get(k).is_ok()).collect();
        assert_eq!(b, s, "fan-out must not perturb the fault schedule");
        assert!(b.iter().any(|ok| !ok), "plan fired at least once");
    }

    #[test]
    fn batch_workers_knob_clamps_and_reports() {
        let oss = Oss::in_memory();
        assert_eq!(oss.batch_workers(), DEFAULT_BATCH_WORKERS);
        oss.set_batch_workers(0);
        assert_eq!(oss.batch_workers(), 1, "clamped to at least one worker");
        oss.set_batch_workers(4);
        let keys = batch_keys(8);
        for k in &keys {
            oss.put(k, Bytes::from_static(b"v")).unwrap();
        }
        for r in oss.get_many(&keys) {
            r.unwrap();
        }
        let hist = oss.metrics().batch_fanout.snapshot();
        assert_eq!(hist.max, 4, "fan-out honors the knob");
        assert_eq!(oss.metrics().batch_items.get(), 8);
    }

    #[test]
    fn corrupt_read_fault_mangles_payload_and_counts() {
        use crate::fault::CorruptionKind;
        let oss = Oss::in_memory();
        let payload = Bytes::from(vec![0u8; 64]);
        oss.put("containers/1/data", payload.clone()).unwrap();
        oss.inject_fault(FaultPlan::CorruptRead {
            prefix: "containers/".into(),
            kind: CorruptionKind::BitFlip,
            seed: 42,
        });
        let got = oss.get("containers/1/data").unwrap();
        assert_ne!(got, payload, "bit flip must alter the payload");
        assert_eq!(got.len(), payload.len());
        // Writes and non-matching reads are unaffected.
        oss.put("recipes/a", Bytes::from_static(b"ok")).unwrap();
        assert_eq!(oss.get("recipes/a").unwrap(), Bytes::from_static(b"ok"));
        // Range reads are corrupted too.
        let range = oss.get_range("containers/1/data", 0, 16).unwrap();
        assert_eq!(range.len(), 16);
        // Batched reads draw from the same decision stream.
        let keys = vec!["containers/1/data".to_string()];
        let batched = oss.get_many(&keys);
        assert_ne!(batched[0].as_ref().unwrap(), &payload);
        assert!(oss.metrics().corruptions.get() >= 2);
        oss.clear_faults();
        assert_eq!(oss.get("containers/1/data").unwrap(), payload);
    }

    #[test]
    fn truncating_corruption_shortens_reads() {
        use crate::fault::CorruptionKind;
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from(vec![7u8; 32])).unwrap();
        oss.inject_fault(FaultPlan::CorruptRead {
            prefix: String::new(),
            kind: CorruptionKind::Truncate,
            seed: 5,
        });
        let got = oss.get("k").unwrap();
        assert!(got.len() < 32, "truncation drops at least one byte");
        assert!(got.iter().all(|&b| b == 7), "prefix bytes intact");
    }

    #[test]
    fn endpoint_routing_pins_and_round_robins() {
        let oss = Oss::in_memory();
        assert_eq!(oss.endpoints(), 1);
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.set_endpoints(0);
        assert_eq!(oss.endpoints(), 1, "clamped to at least one endpoint");
        oss.set_endpoints(2);
        // Fail only endpoint 1; a thread pinned to endpoint 0 never sees it,
        // one pinned to endpoint 1 always does.
        oss.inject_fault(FaultPlan::EndpointTransient {
            endpoint: 1,
            prob: 1.0,
            seed: 7,
        });
        {
            let _pin = crate::endpoint::pin(0);
            oss.get("k").unwrap();
            oss.get("k").unwrap();
        }
        {
            let _pin = crate::endpoint::pin(1);
            assert!(matches!(oss.get("k"), Err(SlimError::Transient(_))));
        }
        {
            let _pin = crate::endpoint::pin(3); // pins wrap modulo n
            assert!(matches!(oss.get("k"), Err(SlimError::Transient(_))));
        }
        // Unpinned ops alternate endpoints round-robin, so roughly half of
        // them land on the sick endpoint.
        let outcomes: Vec<bool> = (0..8).map(|_| oss.get("k").is_ok()).collect();
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !ok));
        oss.clear_faults();
    }

    #[test]
    fn single_endpoint_batches_ignore_endpoint_plans() {
        let oss = Oss::in_memory();
        let keys = batch_keys(4);
        for k in &keys {
            oss.put(k, Bytes::from_static(b"v")).unwrap();
        }
        oss.inject_fault(FaultPlan::EndpointTransient {
            endpoint: 1,
            prob: 1.0,
            seed: 1,
        });
        for r in oss.get_many(&keys) {
            r.unwrap(); // everything resolves to endpoint 0
        }
    }

    #[test]
    fn empty_batches_are_free() {
        let oss = Oss::in_memory();
        assert!(oss.get_many(&[]).is_empty());
        assert!(oss.len_many(&[]).is_empty());
        assert!(oss.delete_many(&[]).is_empty());
        assert_eq!(oss.metrics().batch_calls.get(), 0);
    }
}
