//! Key-namespace wrapper: scope any object store to a prefix.
//!
//! The paper's service model is multi-tenant — "the global index maintains
//! the information of all chunks of *a user*" (§III-B). [`NamespacedStore`]
//! gives each tenant an isolated keyspace over one shared bucket: every key
//! is transparently prefixed with `tenants/<name>/`, so two deployments
//! built over different namespaces share nothing — containers, recipes,
//! global index and manifests are all disjoint.

use std::sync::Arc;

use bytes::Bytes;
use slim_types::{Result, SlimError};

use crate::store::ObjectStore;

/// An [`ObjectStore`] view confined to a key prefix.
pub struct NamespacedStore {
    inner: Arc<dyn ObjectStore>,
    prefix: String,
}

impl NamespacedStore {
    /// Scope `inner` to tenant `name` (letters, digits, `-`, `_`, `.`).
    pub fn new(inner: Arc<dyn ObjectStore>, name: &str) -> Result<Self> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(SlimError::InvalidConfig(format!(
                "invalid tenant name {name:?} (use [A-Za-z0-9._-]+)"
            )));
        }
        Ok(NamespacedStore {
            inner,
            prefix: format!("tenants/{name}/"),
        })
    }

    fn full(&self, key: &str) -> String {
        format!("{}{}", self.prefix, key)
    }

    fn full_keys(&self, keys: &[String]) -> Vec<String> {
        keys.iter().map(|k| self.full(k)).collect()
    }

    /// Rewrite a not-found error back to the tenant-relative key name.
    fn relative_err(key: &str, err: SlimError) -> SlimError {
        match err {
            SlimError::ObjectNotFound(_) => SlimError::ObjectNotFound(key.to_string()),
            other => other,
        }
    }
}

impl ObjectStore for NamespacedStore {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.inner.put(&self.full(key), value)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        // Strip the prefix from not-found errors so callers see their own
        // key names.
        self.inner
            .get(&self.full(key))
            .map_err(|e| Self::relative_err(key, e))
    }

    fn get_raw(&self, key: &str) -> Result<Bytes> {
        self.inner
            .get_raw(&self.full(key))
            .map_err(|e| Self::relative_err(key, e))
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        self.inner
            .get_range(&self.full(key), start, len)
            .map_err(|e| Self::relative_err(key, e))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(&self.full(key))
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.inner.exists(&self.full(key))
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        self.inner.len(&self.full(key))
    }

    fn get_many(&self, keys: &[String]) -> Vec<Result<Bytes>> {
        self.inner
            .get_many(&self.full_keys(keys))
            .into_iter()
            .zip(keys)
            .map(|(r, key)| r.map_err(|e| Self::relative_err(key, e)))
            .collect()
    }

    fn get_range_many(&self, ranges: &[(String, u64, u64)]) -> Vec<Result<Bytes>> {
        let full: Vec<(String, u64, u64)> = ranges
            .iter()
            .map(|(key, start, len)| (self.full(key), *start, *len))
            .collect();
        self.inner
            .get_range_many(&full)
            .into_iter()
            .zip(ranges)
            .map(|(r, (key, _, _))| r.map_err(|e| Self::relative_err(key, e)))
            .collect()
    }

    fn len_many(&self, keys: &[String]) -> Vec<Result<Option<u64>>> {
        self.inner.len_many(&self.full_keys(keys))
    }

    fn delete_many(&self, keys: &[String]) -> Vec<Result<()>> {
        self.inner.delete_many(&self.full_keys(keys))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .list(&self.full(prefix))
            .into_iter()
            .filter_map(|k| k.strip_prefix(&self.prefix).map(str::to_string))
            .collect()
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        self.inner.metrics_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Oss;

    #[test]
    fn tenants_are_isolated() {
        let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let alice = NamespacedStore::new(bucket.clone(), "alice").unwrap();
        let bob = NamespacedStore::new(bucket.clone(), "bob").unwrap();
        alice.put("k", Bytes::from_static(b"A")).unwrap();
        bob.put("k", Bytes::from_static(b"B")).unwrap();
        assert_eq!(alice.get("k").unwrap(), Bytes::from_static(b"A"));
        assert_eq!(bob.get("k").unwrap(), Bytes::from_static(b"B"));
        assert_eq!(alice.list(""), vec!["k".to_string()]);
        // Raw bucket sees both, under the tenant prefix.
        assert_eq!(bucket.list("tenants/").len(), 2);
        alice.delete("k").unwrap();
        assert!(!alice.exists("k").unwrap());
        assert!(bob.exists("k").unwrap());
    }

    #[test]
    fn error_keys_are_tenant_relative() {
        let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let t = NamespacedStore::new(bucket, "t1").unwrap();
        match t.get("missing/key") {
            Err(SlimError::ObjectNotFound(k)) => assert_eq!(k, "missing/key"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn batched_ops_stay_tenant_scoped() {
        let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let t = NamespacedStore::new(bucket.clone(), "t1").unwrap();
        t.put("a", Bytes::from_static(b"v")).unwrap();
        let keys: Vec<String> = vec!["a".into(), "missing".into()];
        let results = t.get_many(&keys);
        assert_eq!(results[0].as_ref().unwrap(), &Bytes::from_static(b"v"));
        match &results[1] {
            Err(SlimError::ObjectNotFound(k)) => {
                assert_eq!(k, "missing", "error keys are tenant-relative")
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(*t.len_many(&keys)[0].as_ref().unwrap(), Some(1));
        for r in t.delete_many(&keys) {
            r.unwrap();
        }
        assert!(bucket.list("tenants/t1/").is_empty());
    }

    #[test]
    fn invalid_names_rejected() {
        let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        for bad in ["", "a/b", "a b", "../x"] {
            assert!(
                NamespacedStore::new(bucket.clone(), bad).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn range_reads_pass_through() {
        let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let t = NamespacedStore::new(bucket, "t").unwrap();
        t.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(
            t.get_range("obj", 2, 3).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(t.len("obj").unwrap(), Some(10));
    }

    #[test]
    fn two_slimstore_deployments_share_a_bucket() {
        use slim_types::{FileId, SlimConfig};
        // Whole-system isolation: same bucket, two tenants, independent
        // version histories.
        let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let mk = |name: &str| -> Arc<dyn ObjectStore> {
            Arc::new(NamespacedStore::new(bucket.clone(), name).unwrap())
        };
        let sa = mk("acme");
        let sb = mk("globex");
        sa.put(
            &slim_types::layout::version_manifest(slim_types::VersionId(0)),
            slim_types::VersionManifest::new(slim_types::VersionId(0)).encode(),
        )
        .unwrap();
        assert!(sa.exists("versions/00000000").unwrap());
        assert!(!sb.exists("versions/00000000").unwrap());
        let _ = (FileId::new("x"), SlimConfig::default()); // types in scope
    }
}
