//! Fault injection for the simulated OSS.
//!
//! Integration tests use this to verify that backup/restore jobs surface
//! storage errors instead of corrupting state. Plans come in two families:
//!
//! - **Permanent / one-shot** plans ([`FaultPlan::KeyPrefix`],
//!   [`FaultPlan::NextOps`], [`FaultPlan::NthOnPrefix`]) model hard failures
//!   and targeted kill-points; they produce [`FaultErrorKind::Permanent`].
//! - **Transient** plans ([`FaultPlan::TransientProb`],
//!   [`FaultPlan::Throttle`], [`FaultPlan::Latency`]) model the 5xx/429/slow
//!   behaviour of real object stores. They are driven by per-plan operation
//!   counters and a seeded splitmix64 stream, so an armed schedule is fully
//!   reproducible: the same seed and the same operation sequence yield the
//!   same faults on every run.
//!
//! Multiple plans can be armed at once via [`FaultState::arm_also`] (e.g.
//! latency on every op plus probabilistic transient failures); the first
//! failing plan in arming order decides the error kind, and latency from all
//! matching [`FaultPlan::Latency`] plans accumulates.

use std::time::Duration;

use parking_lot::Mutex;

/// What operations to fail.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Fail every operation whose key starts with this prefix.
    KeyPrefix(String),
    /// Fail the next `n` operations (any key), then recover.
    NextOps(u64),
    /// Fail the `nth` (1-based) future operation whose key starts with the
    /// prefix, then recover.
    NthOnPrefix { prefix: String, nth: u64 },
    /// Fail each operation whose key starts with `prefix` with probability
    /// `prob`, deterministically derived from `seed` and the per-plan
    /// operation ordinal. A failed operation succeeds when retried iff the
    /// next ordinal draws above `prob` — the transient-5xx model.
    TransientProb {
        prefix: String,
        prob: f64,
        seed: u64,
    },
    /// Fail every `every_nth` (1-based) operation with a throttling error,
    /// persistently — the rate-limit model.
    Throttle { every_nth: u64 },
    /// Inject `delay` on every operation whose key starts with `prefix`;
    /// the operation itself succeeds — the slow-request model.
    Latency { prefix: String, delay: Duration },
    /// Corrupt the payload of every *read* whose key starts with `prefix`:
    /// the operation succeeds but returns mangled bytes — the bit-rot /
    /// torn-object model. Non-read operations are unaffected. The corruption
    /// site is drawn deterministically from `seed` and the per-plan
    /// operation ordinal, so schedules replay exactly.
    CorruptRead {
        prefix: String,
        kind: CorruptionKind,
        seed: u64,
    },
    /// Inject a seeded *heavy-tailed* delay on every operation whose key
    /// starts with `prefix` (optionally only when served by one endpoint):
    /// the delay is drawn from a bounded Pareto distribution with minimum
    /// `scale`, tail exponent `shape`, and hard upper bound `cap` — the
    /// gray-failure straggler model (most requests near `scale`, a seeded
    /// few out at the tail). The operation itself succeeds. Draws come from
    /// `seed` and the per-plan operation ordinal, so straggler schedules
    /// replay exactly.
    LatencyPareto {
        prefix: String,
        /// Restrict the plan to one endpoint (`None` = every endpoint) —
        /// how tests model a single degraded-but-alive storage node.
        endpoint: Option<usize>,
        /// Minimum injected delay (the Pareto `x_m`).
        scale: Duration,
        /// Tail exponent `alpha` (> 0); smaller = heavier tail.
        shape: f64,
        /// Hard bound on one injected delay.
        cap: Duration,
        seed: u64,
    },
    /// Fail each operation served by `endpoint` with probability `prob`,
    /// drawn deterministically from `seed` and the per-plan ordinal — the
    /// sick-endpoint model that circuit-breaker tests arm. Operations
    /// routed to other endpoints are untouched.
    EndpointTransient {
        endpoint: usize,
        prob: f64,
        seed: u64,
    },
}

/// How a [`FaultPlan::CorruptRead`] plan mangles a read payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip one bit at a seeded position.
    BitFlip,
    /// Drop a seeded number of trailing bytes (at least one).
    Truncate,
}

/// Error class an armed plan assigns to a failed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultErrorKind {
    /// Hard failure; not retryable (`SlimError::InjectedFault`).
    Permanent,
    /// Retryable transient failure (`SlimError::Transient`).
    Transient,
    /// Retryable rate-limit failure (`SlimError::Throttled`).
    Throttled,
}

/// Outcome of consulting the fault state for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Injected latency to apply before completing (or failing) the op.
    pub delay: Duration,
    /// Failure to inject, if any.
    pub error: Option<FaultErrorKind>,
    /// Payload corruption to apply if the operation is a read, if any.
    pub corruption: Option<Corruption>,
}

/// A concrete corruption draw for one read: the kind plus a seeded salt
/// that picks the bit/byte position within the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    pub kind: CorruptionKind,
    pub salt: u64,
}

impl Corruption {
    /// Mangle `buf` in place. A bit flip targets a salted bit; a truncation
    /// drops a salted number of trailing bytes (at least one). Empty
    /// payloads are returned unchanged — there is nothing to corrupt.
    pub fn apply(&self, buf: &mut Vec<u8>) {
        if buf.is_empty() {
            return;
        }
        match self.kind {
            CorruptionKind::BitFlip => {
                let bit = (self.salt as usize) % (buf.len() * 8);
                buf[bit / 8] ^= 1 << (bit % 8);
            }
            CorruptionKind::Truncate => {
                let drop = 1 + (self.salt as usize) % buf.len();
                buf.truncate(buf.len() - drop);
            }
        }
    }
}

impl FaultDecision {
    const ALLOW: FaultDecision = FaultDecision {
        delay: Duration::ZERO,
        error: None,
        corruption: None,
    };
}

/// One armed plan plus its private operation counter.
#[derive(Debug)]
struct Armed {
    plan: FaultPlan,
    seen: u64,
}

/// Armed fault state attached to an [`crate::Oss`].
#[derive(Debug, Default)]
pub struct FaultState {
    plans: Mutex<Vec<Armed>>,
}

impl FaultState {
    /// Arm a plan, replacing all existing ones.
    pub fn arm(&self, plan: FaultPlan) {
        *self.plans.lock() = vec![Armed { plan, seen: 0 }];
    }

    /// Arm an additional plan alongside the already-armed ones.
    pub fn arm_also(&self, plan: FaultPlan) {
        self.plans.lock().push(Armed { plan, seen: 0 });
    }

    /// Disarm everything.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    /// Decide the fate of the operation on `key` as served by endpoint 0 —
    /// the single-endpoint convenience form of [`FaultState::decide_at`].
    pub fn decide(&self, key: &str) -> FaultDecision {
        self.decide_at(key, 0)
    }

    /// Decide the fate of the operation on `key` as served by `endpoint`;
    /// updates per-plan counters and auto-disarms exhausted one-shot plans.
    /// Endpoint-scoped plans ([`FaultPlan::LatencyPareto`],
    /// [`FaultPlan::EndpointTransient`]) only consider ops routed to their
    /// endpoint; every other plan ignores the endpoint entirely.
    pub fn decide_at(&self, key: &str, endpoint: usize) -> FaultDecision {
        let mut guard = self.plans.lock();
        if guard.is_empty() {
            return FaultDecision::ALLOW;
        }
        let mut delay = Duration::ZERO;
        let mut error = None;
        let mut corruption = None;
        let mut i = 0;
        while i < guard.len() {
            let armed = &mut guard[i];
            let mut disarm = false;
            let fired = match &armed.plan {
                FaultPlan::KeyPrefix(prefix) => key
                    .starts_with(prefix.as_str())
                    .then_some(FaultErrorKind::Permanent),
                FaultPlan::NextOps(n) => {
                    armed.seen += 1;
                    disarm = armed.seen >= *n;
                    Some(FaultErrorKind::Permanent)
                }
                FaultPlan::NthOnPrefix { prefix, nth } => {
                    if key.starts_with(prefix.as_str()) {
                        armed.seen += 1;
                        if armed.seen == *nth {
                            disarm = true;
                            Some(FaultErrorKind::Permanent)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                FaultPlan::TransientProb { prefix, prob, seed } => {
                    if key.starts_with(prefix.as_str()) {
                        armed.seen += 1;
                        (unit_f64(splitmix64(seed.wrapping_add(armed.seen))) < *prob)
                            .then_some(FaultErrorKind::Transient)
                    } else {
                        None
                    }
                }
                FaultPlan::Throttle { every_nth } => {
                    armed.seen += 1;
                    (*every_nth > 0 && armed.seen % *every_nth == 0)
                        .then_some(FaultErrorKind::Throttled)
                }
                FaultPlan::Latency { prefix, delay: d } => {
                    if key.starts_with(prefix.as_str()) {
                        delay += *d;
                    }
                    None
                }
                FaultPlan::CorruptRead { prefix, kind, seed } => {
                    if key.starts_with(prefix.as_str()) {
                        armed.seen += 1;
                        if corruption.is_none() {
                            corruption = Some(Corruption {
                                kind: *kind,
                                salt: splitmix64(seed.wrapping_add(armed.seen)),
                            });
                        }
                    }
                    None
                }
                FaultPlan::LatencyPareto {
                    prefix,
                    endpoint: target,
                    scale,
                    shape,
                    cap,
                    seed,
                } => {
                    if key.starts_with(prefix.as_str()) && target.map_or(true, |t| t == endpoint) {
                        armed.seen += 1;
                        let u = unit_f64(splitmix64(seed.wrapping_add(armed.seen)));
                        delay += pareto_delay(*scale, *shape, *cap, u);
                    }
                    None
                }
                FaultPlan::EndpointTransient {
                    endpoint: target,
                    prob,
                    seed,
                } => {
                    if *target == endpoint {
                        armed.seen += 1;
                        (unit_f64(splitmix64(seed.wrapping_add(armed.seen))) < *prob)
                            .then_some(FaultErrorKind::Transient)
                    } else {
                        None
                    }
                }
            };
            if error.is_none() {
                error = fired;
            }
            if disarm {
                guard.remove(i);
            } else {
                i += 1;
            }
        }
        FaultDecision {
            delay,
            error,
            corruption,
        }
    }
}

/// Bounded Pareto draw: `scale * (1 - u)^(-1/shape)`, clamped to `cap`.
/// Degenerate shapes (≤ 0, NaN) fall back to the minimum delay so a bad
/// plan can never stall a test forever.
fn pareto_delay(scale: Duration, shape: f64, cap: Duration, u: f64) -> Duration {
    if !(shape > 0.0) {
        return scale.min(cap);
    }
    let factor = (1.0 - u).powf(-1.0 / shape);
    if !factor.is_finite() {
        return cap;
    }
    scale.mul_f64(factor).min(cap)
}

/// splitmix64 — tiny, dependency-free, statistically solid PRNG step.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a u64 to a uniform f64 in `[0, 1)` using the top 53 bits.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fails(st: &FaultState, key: &str) -> bool {
        st.decide(key).error.is_some()
    }

    #[test]
    fn prefix_plan_matches_only_prefix() {
        let st = FaultState::default();
        st.arm(FaultPlan::KeyPrefix("containers/".into()));
        assert!(fails(&st, "containers/12"));
        assert!(!fails(&st, "recipes/a"));
        assert!(fails(&st, "containers/99"), "prefix plan is persistent");
        st.clear();
        assert!(!fails(&st, "containers/12"));
    }

    #[test]
    fn next_ops_plan_auto_disarms() {
        let st = FaultState::default();
        st.arm(FaultPlan::NextOps(2));
        assert!(fails(&st, "a"));
        assert!(fails(&st, "b"));
        assert!(!fails(&st, "c"));
    }

    #[test]
    fn nth_on_prefix_fires_once() {
        let st = FaultState::default();
        st.arm(FaultPlan::NthOnPrefix {
            prefix: "x/".into(),
            nth: 2,
        });
        assert!(!fails(&st, "x/1"));
        assert!(!fails(&st, "y/anything"));
        assert!(fails(&st, "x/2"));
        assert!(!fails(&st, "x/3"));
    }

    #[test]
    fn transient_prob_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let st = FaultState::default();
            st.arm(FaultPlan::TransientProb {
                prefix: String::new(),
                prob: 0.3,
                seed,
            });
            (0..64).map(|_| fails(&st, "k")).collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed replays the same schedule");
        assert_ne!(a, run(8), "different seeds differ");
        let hits = a.iter().filter(|f| **f).count();
        assert!(hits > 5 && hits < 40, "p=0.3 over 64 ops, got {hits}");
        let st = FaultState::default();
        st.arm(FaultPlan::TransientProb {
            prefix: "x/".into(),
            prob: 1.0,
            seed: 1,
        });
        assert!(!fails(&st, "y/other"), "prefix-filtered");
        assert_eq!(
            st.decide("x/k").error,
            Some(FaultErrorKind::Transient),
            "transient kind"
        );
    }

    #[test]
    fn throttle_fires_every_nth_persistently() {
        let st = FaultState::default();
        st.arm(FaultPlan::Throttle { every_nth: 3 });
        let pattern: Vec<bool> = (0..9).map(|_| fails(&st, "k")).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(st.decide("k").error, None);
        assert_eq!(st.decide("k").error, None);
        assert_eq!(st.decide("k").error, Some(FaultErrorKind::Throttled));
    }

    #[test]
    fn latency_plan_delays_without_failing() {
        let st = FaultState::default();
        st.arm(FaultPlan::Latency {
            prefix: "containers/".into(),
            delay: Duration::from_millis(5),
        });
        let d = st.decide("containers/1/data");
        assert_eq!(d.delay, Duration::from_millis(5));
        assert_eq!(d.error, None);
        assert_eq!(st.decide("recipes/a"), FaultDecision::ALLOW);
    }

    #[test]
    fn plans_compose_and_first_error_wins() {
        let st = FaultState::default();
        st.arm(FaultPlan::Latency {
            prefix: String::new(),
            delay: Duration::from_millis(2),
        });
        st.arm_also(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: 2,
        });
        st.arm_also(FaultPlan::Throttle { every_nth: 2 });
        let first = st.decide("k");
        assert_eq!(first.delay, Duration::from_millis(2));
        assert_eq!(first.error, None);
        let second = st.decide("k");
        assert_eq!(second.delay, Duration::from_millis(2));
        assert_eq!(
            second.error,
            Some(FaultErrorKind::Permanent),
            "earlier-armed NthOnPrefix outranks Throttle on the same op"
        );
        let third = st.decide("k");
        assert_eq!(
            third.error, None,
            "one-shot plan disarmed, throttle off-cycle"
        );
        let fourth = st.decide("k");
        assert_eq!(fourth.error, Some(FaultErrorKind::Throttled));
    }

    #[test]
    fn corrupt_read_plan_mangles_deterministically() {
        let st = FaultState::default();
        st.arm(FaultPlan::CorruptRead {
            prefix: "containers/".into(),
            kind: CorruptionKind::BitFlip,
            seed: 11,
        });
        let d = st.decide("containers/1/data");
        assert_eq!(d.error, None, "corruption succeeds the op");
        let c = d.corruption.expect("matching prefix corrupts");
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        c.apply(&mut a);
        c.apply(&mut b);
        assert_eq!(a, b, "same draw, same damage");
        assert_eq!(a.iter().filter(|&&x| x != 0).count(), 1, "one bit flipped");
        assert_eq!(st.decide("recipes/a").corruption, None, "prefix-filtered");
        // Truncation drops at least one byte and never empties more than
        // the payload.
        let st = FaultState::default();
        st.arm(FaultPlan::CorruptRead {
            prefix: String::new(),
            kind: CorruptionKind::Truncate,
            seed: 3,
        });
        let c = st.decide("k").corruption.unwrap();
        let mut buf = vec![9u8; 16];
        c.apply(&mut buf);
        assert!(buf.len() < 16);
        let mut empty: Vec<u8> = Vec::new();
        c.apply(&mut empty);
        assert!(empty.is_empty(), "empty payload unchanged");
    }

    #[test]
    fn latency_pareto_is_bounded_seeded_and_endpoint_scoped() {
        let plan = FaultPlan::LatencyPareto {
            prefix: String::new(),
            endpoint: Some(1),
            scale: Duration::from_millis(1),
            shape: 1.2,
            cap: Duration::from_millis(50),
            seed: 42,
        };
        let run = || -> Vec<Duration> {
            let st = FaultState::default();
            st.arm(plan.clone());
            (0..256).map(|_| st.decide_at("k", 1).delay).collect()
        };
        let a = run();
        assert_eq!(a, run(), "same seed replays the same straggler schedule");
        assert!(
            a.iter()
                .all(|d| (Duration::from_millis(1)..=Duration::from_millis(50)).contains(d)),
            "every delay within [scale, cap]"
        );
        assert!(
            a.iter().any(|d| *d > Duration::from_millis(5)),
            "heavy tail produces outliers"
        );
        let st = FaultState::default();
        st.arm(plan);
        let other = st.decide_at("k", 0);
        assert_eq!(other, FaultDecision::ALLOW, "scoped to endpoint 1");
        assert_eq!(st.decide_at("k", 1).error, None, "delay-only, op succeeds");
    }

    #[test]
    fn endpoint_transient_only_hits_its_endpoint() {
        let st = FaultState::default();
        st.arm(FaultPlan::EndpointTransient {
            endpoint: 1,
            prob: 1.0,
            seed: 5,
        });
        assert_eq!(st.decide_at("k", 0).error, None);
        assert_eq!(
            st.decide_at("k", 1).error,
            Some(FaultErrorKind::Transient),
            "sick endpoint fails with a retryable kind"
        );
        let run = |seed: u64| -> Vec<bool> {
            let st = FaultState::default();
            st.arm(FaultPlan::EndpointTransient {
                endpoint: 0,
                prob: 0.4,
                seed,
            });
            (0..64)
                .map(|_| st.decide_at("k", 0).error.is_some())
                .collect()
        };
        assert_eq!(run(9), run(9), "seed-deterministic");
        assert_ne!(run(9), run(10), "different seeds differ");
    }

    #[test]
    fn decide_is_decide_at_endpoint_zero() {
        let st = FaultState::default();
        st.arm(FaultPlan::EndpointTransient {
            endpoint: 0,
            prob: 1.0,
            seed: 1,
        });
        assert!(st.decide("k").error.is_some());
    }

    #[test]
    fn unit_f64_stays_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
