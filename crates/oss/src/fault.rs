//! Fault injection for the simulated OSS.
//!
//! Integration tests use this to verify that backup/restore jobs surface
//! storage errors instead of corrupting state: fail every operation on keys
//! with a given prefix, fail the next N operations, or fail one specific
//! (prefix, nth) combination.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// What operations to fail.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Fail every operation whose key starts with this prefix.
    KeyPrefix(String),
    /// Fail the next `n` operations (any key), then recover.
    NextOps(u64),
    /// Fail the `nth` (1-based) future operation whose key starts with the
    /// prefix, then recover.
    NthOnPrefix { prefix: String, nth: u64 },
}

/// Armed fault state attached to an [`crate::Oss`].
#[derive(Debug, Default)]
pub struct FaultState {
    plan: Mutex<Option<FaultPlan>>,
    seen: AtomicU64,
}

impl FaultState {
    /// Arm a plan (replacing any existing one).
    pub fn arm(&self, plan: FaultPlan) {
        self.seen.store(0, Ordering::SeqCst);
        *self.plan.lock() = Some(plan);
    }

    /// Disarm.
    pub fn clear(&self) {
        *self.plan.lock() = None;
    }

    /// Decide whether the operation on `key` should fail; updates internal
    /// counters and auto-disarms one-shot plans.
    pub fn should_fail(&self, key: &str) -> bool {
        let mut guard = self.plan.lock();
        let Some(plan) = guard.as_ref() else {
            return false;
        };
        match plan {
            FaultPlan::KeyPrefix(prefix) => key.starts_with(prefix.as_str()),
            FaultPlan::NextOps(n) => {
                let n = *n;
                let seen = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
                if seen >= n {
                    *guard = None;
                }
                true
            }
            FaultPlan::NthOnPrefix { prefix, nth } => {
                if !key.starts_with(prefix.as_str()) {
                    return false;
                }
                let nth = *nth;
                let seen = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
                if seen == nth {
                    *guard = None;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_plan_matches_only_prefix() {
        let st = FaultState::default();
        st.arm(FaultPlan::KeyPrefix("containers/".into()));
        assert!(st.should_fail("containers/12"));
        assert!(!st.should_fail("recipes/a"));
        assert!(st.should_fail("containers/99"), "prefix plan is persistent");
        st.clear();
        assert!(!st.should_fail("containers/12"));
    }

    #[test]
    fn next_ops_plan_auto_disarms() {
        let st = FaultState::default();
        st.arm(FaultPlan::NextOps(2));
        assert!(st.should_fail("a"));
        assert!(st.should_fail("b"));
        assert!(!st.should_fail("c"));
    }

    #[test]
    fn nth_on_prefix_fires_once() {
        let st = FaultState::default();
        st.arm(FaultPlan::NthOnPrefix { prefix: "x/".into(), nth: 2 });
        assert!(!st.should_fail("x/1"));
        assert!(!st.should_fail("y/anything"));
        assert!(st.should_fail("x/2"));
        assert!(!st.should_fail("x/3"));
    }
}
