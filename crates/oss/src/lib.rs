//! Simulated Object Storage Service (OSS) and Rocks-OSS.
//!
//! SLIMSTORE's storage layer lives on cloud object storage (Alibaba OSS /
//! Amazon S3 in the paper). This crate provides a faithful in-process stand-in
//! with the properties the paper's evaluation depends on:
//!
//! * **high per-request latency** — every operation pays a configurable
//!   round-trip latency;
//! * **low single-channel, scalable multi-channel bandwidth** — transfer time
//!   is `bytes / channel_bandwidth`, and up to `channels` transfers proceed in
//!   parallel (Table II's prefetch-thread scaling comes from exactly this);
//! * **pay-per-byte accounting** — [`OssMetrics`] counts every request and
//!   byte, which is what the read-amplification figures (containers read per
//!   100 MB) are computed from;
//! * **fault injection** — tests can make specific keys or the Nth operation
//!   fail, throttle every Nth request, inject latency, or draw transient
//!   failures from a seeded probabilistic schedule ([`fault`]);
//! * **retries** — [`RetryingStore`] wraps any [`ObjectStore`] with
//!   exponential backoff, deterministic jitter, and attempt/deadline budgets
//!   ([`retry`]);
//! * **self-healing redundancy** — [`RedundantStore`] reconstructs corrupt
//!   or missing container objects from replicas or XOR parity groups and
//!   read-repairs the primary in place ([`redundant`]).
//!
//! [`rocks`] implements *Rocks-OSS* (§III-B): an LSM key-value store whose
//! SSTables are OSS objects, used by the global fingerprint index.

pub mod disk;
pub mod fault;
pub mod metrics;
pub mod namespace;
pub mod network;
pub mod redundant;
pub mod retry;
pub mod rocks;
pub mod store;

pub use disk::LocalDiskOss;
pub use fault::{Corruption, CorruptionKind, FaultDecision, FaultErrorKind, FaultPlan};
pub use metrics::{MetricsSnapshot, OssMetrics};
pub use namespace::NamespacedStore;
pub use network::NetworkModel;
pub use redundant::{reconstruct_object, RedundancyMetrics, RedundantStore, RepairSource};
pub use retry::{RetryMetrics, RetryPolicy, RetryingStore};
pub use store::{ObjectStore, Oss, DEFAULT_BATCH_WORKERS};
