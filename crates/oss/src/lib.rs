//! Simulated Object Storage Service (OSS) and Rocks-OSS.
//!
//! SLIMSTORE's storage layer lives on cloud object storage (Alibaba OSS /
//! Amazon S3 in the paper). This crate provides a faithful in-process stand-in
//! with the properties the paper's evaluation depends on:
//!
//! * **high per-request latency** — every operation pays a configurable
//!   round-trip latency;
//! * **low single-channel, scalable multi-channel bandwidth** — transfer time
//!   is `bytes / channel_bandwidth`, and up to `channels` transfers proceed in
//!   parallel (Table II's prefetch-thread scaling comes from exactly this);
//! * **pay-per-byte accounting** — [`OssMetrics`] counts every request and
//!   byte, which is what the read-amplification figures (containers read per
//!   100 MB) are computed from;
//! * **fault injection** — tests can make specific keys or the Nth operation
//!   fail, throttle every Nth request, inject latency, or draw transient
//!   failures from a seeded probabilistic schedule ([`fault`]);
//! * **retries** — [`RetryingStore`] wraps any [`ObjectStore`] with
//!   exponential backoff, deterministic jitter, and attempt/deadline budgets
//!   ([`retry`]);
//! * **self-healing redundancy** — [`RedundantStore`] reconstructs corrupt
//!   or missing container objects from replicas or XOR parity groups and
//!   read-repairs the primary in place ([`redundant`]).
//!
//! * **gray-failure resilience** — [`HedgedStore`] scores the health of each
//!   simulated endpoint ([`health`]), hedges idempotent reads against the
//!   healthiest backup endpoint after a live latency quantile, breaks the
//!   circuit to persistently sick endpoints, and honors the ambient request
//!   [`slim_types::Deadline`] before issuing any call ([`hedge`]).
//!
//! [`rocks`] implements *Rocks-OSS* (§III-B): an LSM key-value store whose
//! SSTables are OSS objects, used by the global fingerprint index.

pub mod disk;
pub mod endpoint;
pub mod fault;
pub mod health;
pub mod hedge;
pub mod metrics;
pub mod namespace;
pub mod network;
pub mod redundant;
pub mod retry;
pub mod rocks;
pub mod store;

pub use disk::LocalDiskOss;
pub use fault::{Corruption, CorruptionKind, FaultDecision, FaultErrorKind, FaultPlan};
pub use health::HealthTracker;
pub use hedge::{BreakerPolicy, BreakerStage, CircuitBreaker, HedgePolicy, HedgedStore};
pub use metrics::{MetricsSnapshot, OssMetrics};
pub use namespace::NamespacedStore;
pub use network::NetworkModel;
pub use redundant::{reconstruct_object, RedundancyMetrics, RedundantStore, RepairSource};
pub use retry::{next_jitter_salt, RetryMetrics, RetryPolicy, RetryingStore};
pub use store::{ObjectStore, Oss, DEFAULT_BATCH_WORKERS};
