//! OSS traffic accounting.
//!
//! Every experiment in the paper that measures "read container number per
//! 100 MB", OSS bandwidth consumption, or network time is computed from
//! counters like these. They are atomics so all L-node/G-node threads share
//! one instance without locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters on an [`crate::Oss`] instance.
#[derive(Debug, Default)]
pub struct OssMetrics {
    /// Number of GET (full or range) requests.
    pub get_requests: AtomicU64,
    /// Number of PUT requests.
    pub put_requests: AtomicU64,
    /// Number of DELETE requests.
    pub delete_requests: AtomicU64,
    /// Payload bytes downloaded.
    pub bytes_read: AtomicU64,
    /// Payload bytes uploaded.
    pub bytes_written: AtomicU64,
    /// Wall-clock nanoseconds threads spent inside OSS calls (latency +
    /// transfer + channel queueing). This is the "network time" series of
    /// Fig 2.
    pub net_time_nanos: AtomicU64,
    /// Faults injected by the armed [`crate::FaultPlan`]s (all kinds).
    pub injected_faults: AtomicU64,
    /// Nanoseconds of artificial latency injected by `FaultPlan::Latency`.
    pub injected_delay_nanos: AtomicU64,
}

impl OssMetrics {
    pub(crate) fn record_get(&self, bytes: u64, elapsed: Duration) {
        self.get_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.net_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_put(&self, bytes: u64, elapsed: Duration) {
        self.put_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.net_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self, elapsed: Duration) {
        self.delete_requests.fetch_add(1, Ordering::Relaxed);
        self.net_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_injected_fault(&self) {
        self.injected_faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_injected_delay(&self, delay: Duration) {
        self.injected_delay_nanos
            .fetch_add(delay.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Capture current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            get_requests: self.get_requests.load(Ordering::Relaxed),
            put_requests: self.put_requests.load(Ordering::Relaxed),
            delete_requests: self.delete_requests.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            net_time: Duration::from_nanos(self.net_time_nanos.load(Ordering::Relaxed)),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            injected_delay: Duration::from_nanos(
                self.injected_delay_nanos.load(Ordering::Relaxed),
            ),
            retries: 0,
            giveups: 0,
        }
    }
}

/// Point-in-time copy of [`OssMetrics`]; supports differencing so harnesses
/// can measure one phase of an experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub get_requests: u64,
    pub put_requests: u64,
    pub delete_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub net_time: Duration,
    /// Faults injected by armed fault plans (all kinds).
    pub injected_faults: u64,
    /// Artificial latency injected by `FaultPlan::Latency`.
    pub injected_delay: Duration,
    /// Operations re-issued by a [`crate::RetryingStore`] after a retryable
    /// failure. Zero when the snapshot comes from a bare store.
    pub retries: u64,
    /// Operations a [`crate::RetryingStore`] abandoned after exhausting its
    /// attempt or deadline budget.
    pub giveups: u64,
}

impl MetricsSnapshot {
    /// Traffic between `earlier` and `self`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            get_requests: self.get_requests - earlier.get_requests,
            put_requests: self.put_requests - earlier.put_requests,
            delete_requests: self.delete_requests - earlier.delete_requests,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            net_time: self.net_time.saturating_sub(earlier.net_time),
            injected_faults: self.injected_faults - earlier.injected_faults,
            injected_delay: self.injected_delay.saturating_sub(earlier.injected_delay),
            retries: self.retries - earlier.retries,
            giveups: self.giveups - earlier.giveups,
        }
    }

    /// Total request count.
    pub fn total_requests(&self) -> u64 {
        self.get_requests + self.put_requests + self.delete_requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(2));
        m.record_put(50, Duration::from_millis(1));
        m.record_delete(Duration::from_millis(1));
        let s = m.snapshot();
        assert_eq!(s.get_requests, 1);
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.delete_requests, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 50);
        assert_eq!(s.net_time, Duration::from_millis(4));
        assert_eq!(s.total_requests(), 3);
    }

    #[test]
    fn snapshot_difference() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(1));
        let a = m.snapshot();
        m.record_get(200, Duration::from_millis(1));
        m.record_put(10, Duration::ZERO);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.get_requests, 1);
        assert_eq!(d.bytes_read, 200);
        assert_eq!(d.put_requests, 1);
        assert_eq!(d.bytes_written, 10);
    }
}
