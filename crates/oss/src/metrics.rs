//! OSS traffic accounting.
//!
//! Every experiment in the paper that measures "read container number per
//! 100 MB", OSS bandwidth consumption, or network time is computed from
//! counters like these. They are atomics so all L-node/G-node threads share
//! one instance without locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters on an [`crate::Oss`] instance.
#[derive(Debug, Default)]
pub struct OssMetrics {
    /// Number of GET (full or range) requests.
    pub get_requests: AtomicU64,
    /// Number of PUT requests.
    pub put_requests: AtomicU64,
    /// Number of DELETE requests.
    pub delete_requests: AtomicU64,
    /// Payload bytes downloaded.
    pub bytes_read: AtomicU64,
    /// Payload bytes uploaded.
    pub bytes_written: AtomicU64,
    /// Wall-clock nanoseconds threads spent inside OSS calls (latency +
    /// transfer + channel queueing). This is the "network time" series of
    /// Fig 2.
    pub net_time_nanos: AtomicU64,
}

impl OssMetrics {
    pub(crate) fn record_get(&self, bytes: u64, elapsed: Duration) {
        self.get_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.net_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_put(&self, bytes: u64, elapsed: Duration) {
        self.put_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.net_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self, elapsed: Duration) {
        self.delete_requests.fetch_add(1, Ordering::Relaxed);
        self.net_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Capture current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            get_requests: self.get_requests.load(Ordering::Relaxed),
            put_requests: self.put_requests.load(Ordering::Relaxed),
            delete_requests: self.delete_requests.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            net_time: Duration::from_nanos(self.net_time_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of [`OssMetrics`]; supports differencing so harnesses
/// can measure one phase of an experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub get_requests: u64,
    pub put_requests: u64,
    pub delete_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub net_time: Duration,
}

impl MetricsSnapshot {
    /// Traffic between `earlier` and `self`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            get_requests: self.get_requests - earlier.get_requests,
            put_requests: self.put_requests - earlier.put_requests,
            delete_requests: self.delete_requests - earlier.delete_requests,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            net_time: self.net_time.saturating_sub(earlier.net_time),
        }
    }

    /// Total request count.
    pub fn total_requests(&self) -> u64 {
        self.get_requests + self.put_requests + self.delete_requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(2));
        m.record_put(50, Duration::from_millis(1));
        m.record_delete(Duration::from_millis(1));
        let s = m.snapshot();
        assert_eq!(s.get_requests, 1);
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.delete_requests, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 50);
        assert_eq!(s.net_time, Duration::from_millis(4));
        assert_eq!(s.total_requests(), 3);
    }

    #[test]
    fn snapshot_difference() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(1));
        let a = m.snapshot();
        m.record_get(200, Duration::from_millis(1));
        m.record_put(10, Duration::ZERO);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.get_requests, 1);
        assert_eq!(d.bytes_read, 200);
        assert_eq!(d.put_requests, 1);
        assert_eq!(d.bytes_written, 10);
    }
}
