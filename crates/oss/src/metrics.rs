//! OSS traffic accounting.
//!
//! Every experiment in the paper that measures "read container number per
//! 100 MB", OSS bandwidth consumption, or network time is computed from
//! counters like these. Since PR 2 the counters are registry-backed
//! [`slim_telemetry`] handles: all L-node/G-node threads share one
//! instance without locking, and the same values appear under the `oss.*`
//! names in [`slim_telemetry::TelemetrySnapshot`]s. The [`OssMetrics`] /
//! [`MetricsSnapshot`] API is kept as a thin view over the registry.

use std::time::Duration;

use slim_telemetry::{Counter, Histogram, Registry, Scope, TelemetrySnapshot};

/// Live counters on an [`crate::Oss`] instance.
///
/// Construct with [`OssMetrics::new`] to register the counters under a
/// shared telemetry scope (canonically `"oss"`); the `Default` instance
/// registers in a fresh private registry so a bare `Oss::new` still
/// counts correctly without any wiring.
#[derive(Debug, Clone)]
pub struct OssMetrics {
    /// Number of GET (full or range) requests.
    pub get_requests: Counter,
    /// Number of PUT requests.
    pub put_requests: Counter,
    /// Number of DELETE requests.
    pub delete_requests: Counter,
    /// Payload bytes downloaded.
    pub bytes_read: Counter,
    /// Payload bytes uploaded.
    pub bytes_written: Counter,
    /// Wall-clock nanoseconds threads spent inside OSS calls (latency +
    /// transfer + channel queueing). This is the "network time" series of
    /// Fig 2.
    pub net_time_nanos: Counter,
    /// Faults injected by the armed [`crate::FaultPlan`]s (all kinds).
    pub injected_faults: Counter,
    /// Nanoseconds of artificial latency injected by `FaultPlan::Latency`.
    pub injected_delay_nanos: Counter,
    /// Per-request wall-time distribution (nanoseconds), across GET, PUT,
    /// and DELETE. Exposes p50/p95/p99 in telemetry snapshots as
    /// `oss.request_nanos`.
    pub request_nanos: Histogram,
    /// Number of batched (`*_many`) calls issued (`oss.batch.calls`).
    pub batch_calls: Counter,
    /// Total items across all batched calls (`oss.batch.items`).
    pub batch_items: Counter,
    /// Batch size distribution — items per batched call (`oss.batch.size`).
    pub batch_size: Histogram,
    /// Worker fan-out per batched call: how many of the network model's
    /// channels the batch actually saturates (`oss.batch.fanout`).
    pub batch_fanout: Histogram,
    /// Read payloads mangled by an armed [`crate::FaultPlan::CorruptRead`]
    /// plan (`oss.corruption.injected`). Like the batch counters, kept out
    /// of [`MetricsSnapshot`]: corruption is a test-plane concern, not OSS
    /// traffic.
    pub corruptions: Counter,
}

impl OssMetrics {
    /// Names used by this view, relative to its scope. Keeping them in
    /// one place ties [`OssMetrics::new`], [`MetricsSnapshot::from_telemetry`],
    /// and [`MetricsSnapshot::overlay_into`] together.
    const COUNTERS: [&'static str; 8] = [
        "get_requests",
        "put_requests",
        "delete_requests",
        "bytes_read",
        "bytes_written",
        "net_time_nanos",
        "injected_faults",
        "injected_delay_nanos",
    ];

    /// Register (or re-attach to) the OSS counters under `scope`.
    pub fn new(scope: &Scope) -> Self {
        OssMetrics {
            get_requests: scope.counter("get_requests"),
            put_requests: scope.counter("put_requests"),
            delete_requests: scope.counter("delete_requests"),
            bytes_read: scope.counter("bytes_read"),
            bytes_written: scope.counter("bytes_written"),
            net_time_nanos: scope.counter("net_time_nanos"),
            injected_faults: scope.counter("injected_faults"),
            injected_delay_nanos: scope.counter("injected_delay_nanos"),
            request_nanos: scope.histogram("request_nanos"),
            batch_calls: scope.counter("batch.calls"),
            batch_items: scope.counter("batch.items"),
            batch_size: scope.histogram("batch.size"),
            batch_fanout: scope.histogram("batch.fanout"),
            corruptions: scope.counter("corruption.injected"),
        }
    }

    pub(crate) fn record_get(&self, bytes: u64, elapsed: Duration) {
        self.get_requests.inc();
        self.bytes_read.add(bytes);
        self.record_elapsed(elapsed);
    }

    pub(crate) fn record_put(&self, bytes: u64, elapsed: Duration) {
        self.put_requests.inc();
        self.bytes_written.add(bytes);
        self.record_elapsed(elapsed);
    }

    pub(crate) fn record_delete(&self, elapsed: Duration) {
        self.delete_requests.inc();
        self.record_elapsed(elapsed);
    }

    fn record_elapsed(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.net_time_nanos.add(nanos);
        self.request_nanos.record(nanos);
    }

    /// Account one batched call of `items` requests served by `workers`
    /// fan-out. Deliberately *not* part of [`MetricsSnapshot`]: the batch
    /// plane must leave the per-request byte/request counters (the read
    /// amplification metrics of Fig 5 / Fig 10) byte-identical to the
    /// sequential path, so batch accounting lives only in telemetry.
    pub(crate) fn record_batch(&self, items: usize, workers: usize) {
        self.batch_calls.inc();
        self.batch_items.add(items as u64);
        self.batch_size.record(items as u64);
        self.batch_fanout.record(workers as u64);
    }

    pub(crate) fn record_injected_fault(&self) {
        self.injected_faults.inc();
    }

    pub(crate) fn record_injected_corruption(&self) {
        self.corruptions.inc();
    }

    pub(crate) fn record_injected_delay(&self, delay: Duration) {
        self.injected_delay_nanos
            .add(u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Capture current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            get_requests: self.get_requests.get(),
            put_requests: self.put_requests.get(),
            delete_requests: self.delete_requests.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            net_time: Duration::from_nanos(self.net_time_nanos.get()),
            injected_faults: self.injected_faults.get(),
            injected_delay: Duration::from_nanos(self.injected_delay_nanos.get()),
            retries: 0,
            giveups: 0,
            retry_bytes: 0,
        }
    }
}

impl Default for OssMetrics {
    fn default() -> Self {
        OssMetrics::new(&Registry::new().scope("oss"))
    }
}

/// Point-in-time copy of [`OssMetrics`]; supports differencing so harnesses
/// can measure one phase of an experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub get_requests: u64,
    pub put_requests: u64,
    pub delete_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub net_time: Duration,
    /// Faults injected by armed fault plans (all kinds).
    pub injected_faults: u64,
    /// Artificial latency injected by `FaultPlan::Latency`.
    pub injected_delay: Duration,
    /// Operations re-issued by a [`crate::RetryingStore`] after a retryable
    /// failure. Zero when the snapshot comes from a bare store.
    pub retries: u64,
    /// Operations a [`crate::RetryingStore`] abandoned after exhausting its
    /// attempt or deadline budget.
    pub giveups: u64,
    /// Payload bytes re-uploaded by retried PUT attempts. Kept separate so
    /// retries never inflate `bytes_written` (the dedup-cost series of the
    /// paper's figures); `bytes_written` stays the logical upload volume.
    pub retry_bytes: u64,
}

impl MetricsSnapshot {
    /// Traffic between `earlier` and `self`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            get_requests: self.get_requests - earlier.get_requests,
            put_requests: self.put_requests - earlier.put_requests,
            delete_requests: self.delete_requests - earlier.delete_requests,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            net_time: self.net_time.saturating_sub(earlier.net_time),
            injected_faults: self.injected_faults - earlier.injected_faults,
            injected_delay: self.injected_delay.saturating_sub(earlier.injected_delay),
            retries: self.retries - earlier.retries,
            giveups: self.giveups - earlier.giveups,
            retry_bytes: self.retry_bytes - earlier.retry_bytes,
        }
    }

    /// Total request count.
    pub fn total_requests(&self) -> u64 {
        self.get_requests + self.put_requests + self.delete_requests
    }

    /// Reconstruct the OSS view from a telemetry snapshot (or snapshot
    /// delta) containing `oss.*` counters; retry counters are folded in
    /// from the `retry.*` scope when present. Returns `None` when the
    /// snapshot carries no OSS section at all.
    pub fn from_telemetry(snap: &TelemetrySnapshot) -> Option<MetricsSnapshot> {
        if !snap.counters.keys().any(|k| k.starts_with("oss.")) {
            return None;
        }
        Some(MetricsSnapshot {
            get_requests: snap.counter("oss.get_requests"),
            put_requests: snap.counter("oss.put_requests"),
            delete_requests: snap.counter("oss.delete_requests"),
            bytes_read: snap.counter("oss.bytes_read"),
            bytes_written: snap.counter("oss.bytes_written"),
            net_time: Duration::from_nanos(snap.counter("oss.net_time_nanos")),
            injected_faults: snap.counter("oss.injected_faults"),
            injected_delay: Duration::from_nanos(snap.counter("oss.injected_delay_nanos")),
            retries: snap.counter("retry.retries"),
            giveups: snap.counter("retry.giveups"),
            retry_bytes: snap.counter("retry.retry_bytes"),
        })
    }

    /// Write this snapshot into `snap` under the canonical `oss.*` /
    /// `retry.*` counter names. Used when an externally-supplied object
    /// store does not share the main registry: its own counters are
    /// overlaid at snapshot time so every store looks the same in
    /// telemetry output.
    pub fn overlay_into(&self, snap: &mut TelemetrySnapshot) {
        let values = [
            self.get_requests,
            self.put_requests,
            self.delete_requests,
            self.bytes_read,
            self.bytes_written,
            u64::try_from(self.net_time.as_nanos()).unwrap_or(u64::MAX),
            self.injected_faults,
            u64::try_from(self.injected_delay.as_nanos()).unwrap_or(u64::MAX),
        ];
        for (name, value) in OssMetrics::COUNTERS.iter().zip(values) {
            snap.counters.insert(format!("oss.{name}"), value);
        }
        snap.counters.insert("retry.retries".into(), self.retries);
        snap.counters.insert("retry.giveups".into(), self.giveups);
        snap.counters
            .insert("retry.retry_bytes".into(), self.retry_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(2));
        m.record_put(50, Duration::from_millis(1));
        m.record_delete(Duration::from_millis(1));
        let s = m.snapshot();
        assert_eq!(s.get_requests, 1);
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.delete_requests, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 50);
        assert_eq!(s.net_time, Duration::from_millis(4));
        assert_eq!(s.total_requests(), 3);
        assert_eq!(m.request_nanos.snapshot().count, 3);
    }

    #[test]
    fn snapshot_difference() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(1));
        let a = m.snapshot();
        m.record_get(200, Duration::from_millis(1));
        m.record_put(10, Duration::ZERO);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.get_requests, 1);
        assert_eq!(d.bytes_read, 200);
        assert_eq!(d.put_requests, 1);
        assert_eq!(d.bytes_written, 10);
    }

    #[test]
    fn registry_backed_counters_share_the_scope() {
        let registry = Registry::new();
        let m = OssMetrics::new(&registry.scope("oss"));
        m.record_put(64, Duration::from_micros(5));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("oss.put_requests"), 1);
        assert_eq!(snap.counter("oss.bytes_written"), 64);
        assert_eq!(snap.histogram("oss.request_nanos").unwrap().count, 1);
    }

    #[test]
    fn telemetry_round_trip_via_overlay() {
        let m = OssMetrics::default();
        m.record_get(100, Duration::from_millis(2));
        m.record_put(50, Duration::from_millis(1));
        let mut view = m.snapshot();
        view.retries = 3;
        view.retry_bytes = 150;

        let mut snap = TelemetrySnapshot::default();
        assert_eq!(MetricsSnapshot::from_telemetry(&snap), None);
        view.overlay_into(&mut snap);
        assert_eq!(MetricsSnapshot::from_telemetry(&snap), Some(view));
    }
}
