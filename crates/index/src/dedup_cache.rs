//! The L-node dedup cache (§IV-A Step 2).
//!
//! Holds the segment recipes prefetched from the detected historical /
//! similar file. Once one sampled chunk matches, logical locality means the
//! chunks around it are very likely duplicates too — so the cache answers:
//!
//! * `lookup(fp)` — is this chunk a known duplicate? Returns the matched
//!   record *and its successor* in the segment, which is what history-aware
//!   skip chunking needs ("look up the size of the next chunk in the dedup
//!   cache", §IV-B);
//! * `lookup_super_first(fp)` — is this chunk the first member of a
//!   superchunk of the previous version? Triggers Algorithm 1 (§IV-C).
//!
//! Capacity is bounded in segments; eviction is FIFO (a backup stream sweeps
//! forward, so the oldest prefetched segment is the least useful). Map
//! entries carry the generation of their segment slot and are validated on
//! hit, making eviction O(segment) without a reverse index.

use std::collections::{HashMap, VecDeque};

use slim_types::{ChunkRecord, Fingerprint, SegmentRecipe};

/// A dedup-cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheHit {
    /// The record whose fingerprint matched.
    pub record: ChunkRecord,
    /// The record immediately after it in the same segment recipe, if any —
    /// the skip-chunking prediction for the next cut. `None` means the
    /// matched record closes its segment: the caller should chain to the
    /// *next* segment recipe of the source file (sequential logical
    /// locality).
    pub next: Option<ChunkRecord>,
    /// Ordinal of the source segment within the detected file's recipe.
    pub segment: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Slot {
    seg: u32,
    idx: u32,
    generation: u64,
}

/// A cached segment: its recipe plus the ordinal it occupies in the source
/// file's recipe (for sequential chaining).
struct CachedSegment {
    generation: u64,
    source_idx: u32,
    recipe: SegmentRecipe,
}

/// Bounded cache of prefetched segment recipes.
pub struct DedupCache {
    segments: Vec<Option<CachedSegment>>,
    fifo: VecDeque<u32>, // slots in insertion order
    free: Vec<u32>,
    by_fp: HashMap<Fingerprint, Slot>,
    super_by_first: HashMap<Fingerprint, Slot>,
    next_generation: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl DedupCache {
    /// Cache holding at most `capacity` segment recipes.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DedupCache {
            segments: Vec::new(),
            fifo: VecDeque::new(),
            free: Vec::new(),
            by_fp: HashMap::new(),
            super_by_first: HashMap::new(),
            next_generation: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached segments.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Insert a prefetched segment recipe, evicting the oldest if full.
    /// `source_idx` is the segment's ordinal in the source file's recipe.
    pub fn insert_segment(&mut self, segment: SegmentRecipe, source_idx: u32) {
        while self.fifo.len() >= self.capacity {
            self.evict_oldest();
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        let cached = CachedSegment {
            generation,
            source_idx,
            recipe: segment,
        };
        let slot_id = match self.free.pop() {
            Some(id) => {
                self.segments[id as usize] = Some(cached);
                id
            }
            None => {
                self.segments.push(Some(cached));
                (self.segments.len() - 1) as u32
            }
        };
        let seg = &self.segments[slot_id as usize]
            .as_ref()
            .expect("just set")
            .recipe;
        // Newest posting wins: if an older cached segment also holds the
        // fingerprint, its eviction must not orphan a fingerprint that the
        // newer segment still serves (eviction only removes postings whose
        // generation matches the evicted segment).
        let mut postings: Vec<(Fingerprint, Slot, bool)> = Vec::with_capacity(seg.records.len());
        for (idx, rec) in seg.records.iter().enumerate() {
            let slot = Slot {
                seg: slot_id,
                idx: idx as u32,
                generation,
            };
            postings.push((rec.fp, slot, false));
            if let Some(sc) = &rec.super_chunk {
                postings.push((sc.first_chunk, slot, true));
            }
        }
        for (fp, slot, is_super) in postings {
            if is_super {
                self.super_by_first.insert(fp, slot);
            } else {
                self.by_fp.insert(fp, slot);
            }
        }
        self.fifo.push_back(slot_id);
    }

    fn evict_oldest(&mut self) {
        let Some(slot_id) = self.fifo.pop_front() else {
            return;
        };
        if let Some(cached) = self.segments[slot_id as usize].take() {
            let generation = cached.generation;
            for rec in &cached.recipe.records {
                if let Some(s) = self.by_fp.get(&rec.fp) {
                    if s.generation == generation {
                        self.by_fp.remove(&rec.fp);
                    }
                }
                if let Some(sc) = &rec.super_chunk {
                    if let Some(s) = self.super_by_first.get(&sc.first_chunk) {
                        if s.generation == generation {
                            self.super_by_first.remove(&sc.first_chunk);
                        }
                    }
                }
            }
        }
        self.free.push(slot_id);
    }

    fn resolve(&self, slot: &Slot) -> Option<(&CachedSegment, usize)> {
        let cached = self.segments.get(slot.seg as usize)?.as_ref()?;
        if cached.generation != slot.generation {
            return None;
        }
        Some((cached, slot.idx as usize))
    }

    /// Is `fp` a known duplicate? Counts hit/miss statistics.
    pub fn lookup(&mut self, fp: &Fingerprint) -> Option<CacheHit> {
        let slot = self.by_fp.get(fp).copied();
        let hit = slot.and_then(|s| {
            let (cached, idx) = self.resolve(&s)?;
            Some(CacheHit {
                record: cached.recipe.records[idx],
                next: cached.recipe.records.get(idx + 1).copied(),
                segment: cached.source_idx,
            })
        });
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Peek without touching statistics (used by probes that are not
    /// dedup decisions).
    pub fn peek(&self, fp: &Fingerprint) -> Option<CacheHit> {
        let slot = self.by_fp.get(fp)?;
        let (cached, idx) = self.resolve(slot)?;
        Some(CacheHit {
            record: cached.recipe.records[idx],
            next: cached.recipe.records.get(idx + 1).copied(),
            segment: cached.source_idx,
        })
    }

    /// The superchunk record whose first member chunk is `fp`, if cached.
    pub fn lookup_super_first(&self, fp: &Fingerprint) -> Option<ChunkRecord> {
        let slot = self.super_by_first.get(fp)?;
        let (cached, idx) = self.resolve(slot)?;
        let rec = cached.recipe.records[idx];
        debug_assert!(rec.is_super());
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_types::{ContainerId, SuperChunkInfo};

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn rec(b: u8, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp(b), ContainerId(b as u64), size, 0)
    }

    fn seg(ids: &[u8]) -> SegmentRecipe {
        SegmentRecipe::new(ids.iter().map(|&b| rec(b, 100 * b as u32)).collect())
    }

    #[test]
    fn lookup_returns_record_and_successor() {
        let mut cache = DedupCache::new(4);
        cache.insert_segment(seg(&[1, 2, 3]), 0);
        let hit = cache.lookup(&fp(2)).unwrap();
        assert_eq!(hit.record.fp, fp(2));
        assert_eq!(hit.next.unwrap().fp, fp(3));
        // Last record has no successor.
        let tail = cache.lookup(&fp(3)).unwrap();
        assert_eq!(tail.next, None);
        assert!(cache.lookup(&fp(9)).is_none());
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn fifo_eviction_drops_oldest_postings() {
        let mut cache = DedupCache::new(2);
        cache.insert_segment(seg(&[1]), 0);
        cache.insert_segment(seg(&[2]), 0);
        cache.insert_segment(seg(&[3]), 0); // evicts segment [1]
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&fp(1)).is_none());
        assert!(cache.lookup(&fp(2)).is_some());
        assert!(cache.lookup(&fp(3)).is_some());
    }

    #[test]
    fn duplicate_fp_across_segments_keeps_newest() {
        let mut cache = DedupCache::new(4);
        let mut s1 = seg(&[5]);
        s1.records[0].container_id = ContainerId(100);
        let mut s2 = seg(&[5]);
        s2.records[0].container_id = ContainerId(200);
        cache.insert_segment(s1, 0);
        cache.insert_segment(s2, 1);
        assert_eq!(
            cache.peek(&fp(5)).unwrap().record.container_id,
            ContainerId(200)
        );
    }

    #[test]
    fn evicting_older_segment_keeps_shared_posting_alive() {
        // fp(7) lives in segments A and B; after A is evicted, B must still
        // serve lookups (the lost-posting bug the last-wins rule fixes).
        let mut cache = DedupCache::new(2);
        cache.insert_segment(seg(&[7, 1]), 0); // A
        cache.insert_segment(seg(&[7, 2]), 1); // B re-posts fp(7)
        cache.insert_segment(seg(&[3]), 2); // evicts A
        assert!(
            cache.lookup(&fp(7)).is_some(),
            "posting lost with segment A"
        );
    }

    #[test]
    fn eviction_does_not_clobber_newer_posting() {
        // fp(7) appears in segments A and B; evicting A must not remove the
        // (re-inserted) posting that belongs to B.
        let mut cache = DedupCache::new(2);
        cache.insert_segment(seg(&[7]), 0); // A
        cache.insert_segment(seg(&[8]), 0);
        cache.insert_segment(seg(&[7]), 0); // B — evicts A, re-posts fp(7)
        assert!(cache.lookup(&fp(7)).is_some());
        cache.insert_segment(seg(&[9]), 0); // evicts [8]
        assert!(cache.lookup(&fp(7)).is_some(), "B's posting must survive");
    }

    #[test]
    fn superchunk_lookup_via_first_member() {
        let mut cache = DedupCache::new(4);
        let sc = ChunkRecord {
            fp: fp(50),
            container_id: ContainerId(9),
            size: 4096,
            duplicate_times: 6,
            super_chunk: Some(SuperChunkInfo {
                first_chunk: fp(51),
                first_chunk_size: 512,
                member_count: 8,
            }),
        };
        cache.insert_segment(SegmentRecipe::new(vec![rec(1, 100), sc]), 3);
        let got = cache.lookup_super_first(&fp(51)).unwrap();
        assert_eq!(got.fp, fp(50));
        assert_eq!(got.super_chunk.unwrap().member_count, 8);
        assert!(cache.lookup_super_first(&fp(50)).is_none());
    }

    #[test]
    fn capacity_of_zero_clamped_to_one() {
        let mut cache = DedupCache::new(0);
        cache.insert_segment(seg(&[1]), 0);
        assert_eq!(cache.len(), 1);
        cache.insert_segment(seg(&[2]), 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&fp(2)).is_some());
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut cache = DedupCache::new(2);
        for b in 1..=20u8 {
            cache.insert_segment(seg(&[b]), 0);
        }
        // Internal vector must not grow unboundedly: at most capacity+1 slots.
        assert!(cache.segments.len() <= 3);
        assert!(cache.lookup(&fp(20)).is_some());
        assert!(cache.lookup(&fp(19)).is_some());
        assert!(cache.lookup(&fp(18)).is_none());
    }
}
