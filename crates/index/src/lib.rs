//! Deduplication indexes of SLIMSTORE.
//!
//! Three index structures from §III-B of the paper:
//!
//! * [`similar::SimilarFileIndex`] — representative fingerprints of every
//!   file, used by an L-node's Step 1 to detect a historical version or
//!   similar file (Broder's theorem);
//! * [`global::GlobalIndex`] — the exact fingerprint → container mapping of
//!   *all* chunks of a user, stored in Rocks-OSS and consulted only by the
//!   G-node (reverse deduplication) and by old-version restores after
//!   relocation;
//! * [`dedup_cache::DedupCache`] — the L-node's in-memory cache of prefetched
//!   segment recipes, which is where logical locality turns one recipe-index
//!   hit into a whole run of duplicate detections (§IV-A Step 2), and where
//!   skip chunking finds "the size of the next chunk" (§IV-B) and
//!   superchunk candidates (§IV-C).
//!
//! Bloom and counting-bloom filters live in [`slim_types::bloom`] because the
//! storage substrate also needs them.

pub mod dedup_cache;
pub mod global;
pub mod similar;

pub use dedup_cache::{CacheHit, DedupCache};
pub use global::GlobalIndex;
pub use similar::SimilarFileIndex;
