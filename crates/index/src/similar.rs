//! The similar-file index (§III-B, §IV-A Step 1).
//!
//! Stores the representative fingerprints of each file. Detection order
//! follows the paper: an incoming backup file first looks for its latest
//! historical version *by path*; only when the path is unknown does it fall
//! back to similarity search — the candidate sharing the most representative
//! fingerprints wins.
//!
//! The index is small (a handful of samples per file), lives in memory on the
//! metadata path and is snapshotted to one OSS object so L-nodes — which are
//! stateless — can load it at job start.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use slim_oss::ObjectStore;
use slim_types::codec::{Reader, Writer};
use slim_types::{layout, FileId, Fingerprint, Result, VersionId};

const MAGIC: &[u8; 4] = b"SLSI";
const VERSION: u8 = 1;

#[derive(Default)]
struct Inner {
    /// Representative fingerprint → files containing it.
    by_sample: HashMap<Fingerprint, Vec<FileId>>,
    /// File → (latest version, its representatives).
    files: HashMap<FileId, (VersionId, Vec<Fingerprint>)>,
}

/// The similar-file index. Cheap to clone (shared handle), thread-safe.
#[derive(Clone, Default)]
pub struct SimilarFileIndex {
    inner: Arc<RwLock<Inner>>,
}

/// Outcome of similar-file detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Detection {
    /// The same path was backed up before: its latest version.
    HistoricalVersion(FileId, VersionId),
    /// A different file shares representative fingerprints.
    SimilarFile(FileId, VersionId, usize),
    /// Nothing matched; treat all chunks as non-duplicate.
    None,
}

impl SimilarFileIndex {
    /// An empty index.
    pub fn new() -> Self {
        SimilarFileIndex::default()
    }

    /// Latest registered version of `file`, if any.
    pub fn latest_version(&self, file: &FileId) -> Option<VersionId> {
        self.inner.read().files.get(file).map(|(v, _)| *v)
    }

    /// Detect a historical version or similar file for an incoming backup
    /// (§IV-A Step 1): path match first, then representative-overlap vote.
    pub fn detect(&self, file: &FileId, samples: &[Fingerprint]) -> Detection {
        let inner = self.inner.read();
        if let Some((version, _)) = inner.files.get(file) {
            return Detection::HistoricalVersion(file.clone(), *version);
        }
        // Vote: candidate sharing most representatives wins.
        let mut votes: HashMap<&FileId, usize> = HashMap::new();
        for fp in samples {
            if let Some(candidates) = inner.by_sample.get(fp) {
                for c in candidates {
                    *votes.entry(c).or_default() += 1;
                }
            }
        }
        let best = votes.into_iter().max_by(
            // Deterministic tie-break on the file id.
            |a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)),
        );
        match best {
            Some((candidate, shared)) if shared > 0 => {
                let (version, _) = &inner.files[candidate];
                Detection::SimilarFile(candidate.clone(), *version, shared)
            }
            _ => Detection::None,
        }
    }

    /// Register (or refresh) a file's representatives after a backup.
    pub fn register(&self, file: FileId, version: VersionId, samples: Vec<Fingerprint>) {
        let mut inner = self.inner.write();
        // Drop stale postings of the previous version.
        if let Some((_, old_samples)) = inner.files.remove(&file) {
            for fp in old_samples {
                if let Some(list) = inner.by_sample.get_mut(&fp) {
                    list.retain(|f| f != &file);
                    if list.is_empty() {
                        inner.by_sample.remove(&fp);
                    }
                }
            }
        }
        for fp in &samples {
            inner.by_sample.entry(*fp).or_default().push(file.clone());
        }
        inner.files.insert(file, (version, samples));
    }

    /// Remove a file entirely (when its last version is collected).
    pub fn remove(&self, file: &FileId) {
        let mut inner = self.inner.write();
        if let Some((_, samples)) = inner.files.remove(file) {
            for fp in samples {
                if let Some(list) = inner.by_sample.get_mut(&fp) {
                    list.retain(|f| f != file);
                    if list.is_empty() {
                        inner.by_sample.remove(&fp);
                    }
                }
            }
        }
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.inner.read().files.len()
    }

    /// Serialize the index.
    pub fn encode(&self) -> bytes::Bytes {
        let inner = self.inner.read();
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.u32(inner.files.len() as u32);
        let mut files: Vec<_> = inner.files.iter().collect();
        files.sort_by(|a, b| a.0.cmp(b.0)); // deterministic snapshots
        for (file, (version, samples)) in files {
            w.string(file.as_str());
            w.u64(version.0);
            w.u32(samples.len() as u32);
            for fp in samples {
                w.fingerprint(fp);
            }
        }
        w.freeze()
    }

    /// Deserialize an index snapshot.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "similar file index");
        r.expect_header(MAGIC, VERSION)?;
        let n = r.u32()? as usize;
        let index = SimilarFileIndex::new();
        for _ in 0..n {
            let file = FileId::new(r.string()?);
            let version = VersionId(r.u64()?);
            let k = r.u32()? as usize;
            let mut samples = Vec::with_capacity(k);
            for _ in 0..k {
                samples.push(r.fingerprint()?);
            }
            index.register(file, version, samples);
        }
        r.finish()?;
        Ok(index)
    }

    /// Persist the snapshot to OSS under the standard key.
    pub fn save(&self, oss: &dyn ObjectStore) -> Result<()> {
        oss.put(layout::SIMILAR_INDEX, self.encode())
    }

    /// Load the snapshot from OSS; missing snapshot yields an empty index.
    pub fn load(oss: &dyn ObjectStore) -> Result<Self> {
        if !oss.exists(layout::SIMILAR_INDEX)? {
            return Ok(SimilarFileIndex::new());
        }
        let buf = oss.get(layout::SIMILAR_INDEX)?;
        SimilarFileIndex::decode(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    #[test]
    fn path_match_beats_similarity() {
        let idx = SimilarFileIndex::new();
        idx.register(FileId::new("a"), VersionId(1), vec![fp(1), fp(2)]);
        idx.register(FileId::new("b"), VersionId(2), vec![fp(1), fp(2), fp(3)]);
        // Even though "b" shares more samples, the path wins.
        let det = idx.detect(&FileId::new("a"), &[fp(1), fp(2), fp(3)]);
        assert_eq!(
            det,
            Detection::HistoricalVersion(FileId::new("a"), VersionId(1))
        );
    }

    #[test]
    fn similarity_vote_picks_max_overlap() {
        let idx = SimilarFileIndex::new();
        idx.register(FileId::new("x"), VersionId(1), vec![fp(1)]);
        idx.register(FileId::new("y"), VersionId(4), vec![fp(1), fp(2), fp(3)]);
        let det = idx.detect(&FileId::new("renamed"), &[fp(1), fp(2), fp(3)]);
        assert_eq!(
            det,
            Detection::SimilarFile(FileId::new("y"), VersionId(4), 3)
        );
    }

    #[test]
    fn no_overlap_detects_none() {
        let idx = SimilarFileIndex::new();
        idx.register(FileId::new("x"), VersionId(1), vec![fp(1)]);
        assert_eq!(idx.detect(&FileId::new("new"), &[fp(9)]), Detection::None);
        assert_eq!(idx.detect(&FileId::new("new"), &[]), Detection::None);
    }

    #[test]
    fn register_refreshes_version_and_postings() {
        let idx = SimilarFileIndex::new();
        let f = FileId::new("f");
        idx.register(f.clone(), VersionId(1), vec![fp(1), fp(2)]);
        idx.register(f.clone(), VersionId(2), vec![fp(3)]);
        assert_eq!(idx.latest_version(&f), Some(VersionId(2)));
        // Old posting must be gone: fp(1) no longer finds f.
        assert_eq!(idx.detect(&FileId::new("other"), &[fp(1)]), Detection::None);
        assert!(matches!(
            idx.detect(&FileId::new("other"), &[fp(3)]),
            Detection::SimilarFile(_, VersionId(2), 1)
        ));
    }

    #[test]
    fn remove_erases_everything() {
        let idx = SimilarFileIndex::new();
        let f = FileId::new("gone");
        idx.register(f.clone(), VersionId(1), vec![fp(7)]);
        idx.remove(&f);
        assert_eq!(idx.file_count(), 0);
        assert_eq!(idx.latest_version(&f), None);
        assert_eq!(idx.detect(&FileId::new("q"), &[fp(7)]), Detection::None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let idx = SimilarFileIndex::new();
        idx.register(FileId::new("a"), VersionId(1), vec![fp(1), fp(2)]);
        idx.register(FileId::new("b"), VersionId(9), vec![fp(3)]);
        let buf = idx.encode();
        let back = SimilarFileIndex::decode(&buf).unwrap();
        assert_eq!(back.file_count(), 2);
        assert_eq!(back.latest_version(&FileId::new("b")), Some(VersionId(9)));
        assert!(matches!(
            back.detect(&FileId::new("?"), &[fp(1)]),
            Detection::SimilarFile(_, VersionId(1), 1)
        ));
    }

    #[test]
    fn save_load_via_oss() {
        let oss = Oss::in_memory();
        let idx = SimilarFileIndex::new();
        idx.register(FileId::new("a"), VersionId(3), vec![fp(5)]);
        idx.save(&oss).unwrap();
        let back = SimilarFileIndex::load(&oss).unwrap();
        assert_eq!(back.latest_version(&FileId::new("a")), Some(VersionId(3)));
        // Loading from an empty store is an empty index.
        let empty = SimilarFileIndex::load(&Oss::in_memory()).unwrap();
        assert_eq!(empty.file_count(), 0);
    }

    #[test]
    fn deterministic_tie_break() {
        let idx = SimilarFileIndex::new();
        idx.register(FileId::new("aa"), VersionId(1), vec![fp(1)]);
        idx.register(FileId::new("bb"), VersionId(2), vec![fp(1)]);
        let d1 = idx.detect(&FileId::new("probe"), &[fp(1)]);
        let d2 = idx.detect(&FileId::new("probe"), &[fp(1)]);
        assert_eq!(d1, d2);
        assert!(matches!(d1, Detection::SimilarFile(f, _, 1) if f == FileId::new("aa")));
    }
}
