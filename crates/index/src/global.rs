//! The global fingerprint index (§III-B, §VI-A).
//!
//! Maintains the exact mapping from every chunk fingerprint of a user to the
//! container that stores the authoritative copy. It lives in Rocks-OSS, so
//! point lookups cost OSS range reads — which is exactly why the *online*
//! path never touches it: only the G-node (reverse deduplication, container
//! rewrites) and old-version restores chasing relocated chunks do.
//!
//! A resident bloom filter in front of the LSM quickly passes unique chunks,
//! the optimization the paper describes for speeding up the reverse-dedup
//! filter phase.

use std::sync::Arc;

use parking_lot::Mutex;
use slim_oss::rocks::{RocksConfig, RocksOss};
use slim_oss::ObjectStore;
use slim_types::bloom::BloomFilter;
use slim_types::{layout, ContainerId, Fingerprint, Result};

/// The global fingerprint → container index.
pub struct GlobalIndex {
    db: RocksOss,
    bloom: Mutex<BloomFilter>,
}

impl GlobalIndex {
    /// Open (or create) the index on `oss` under the standard prefix.
    pub fn open(oss: Arc<dyn ObjectStore>) -> Result<Self> {
        Self::open_with(oss, RocksConfig::default(), 1_000_000)
    }

    /// Open with explicit LSM tuning and bloom capacity.
    pub fn open_with(
        oss: Arc<dyn ObjectStore>,
        config: RocksConfig,
        expected_chunks: usize,
    ) -> Result<Self> {
        let db = RocksOss::open(oss, layout::GLOBAL_INDEX_PREFIX, config)?;
        let index = GlobalIndex {
            db,
            bloom: Mutex::new(BloomFilter::with_rate(expected_chunks, 0.01)),
        };
        index.rebuild_bloom()?;
        Ok(index)
    }

    /// Record that `fp`'s authoritative copy lives in `container`.
    pub fn insert(&self, fp: &Fingerprint, container: ContainerId) -> Result<()> {
        self.db.put(fp.as_bytes(), &container.0.to_le_bytes())?;
        self.bloom.lock().insert(fp.prefix64());
        Ok(())
    }

    /// Where `fp` is stored, if known.
    pub fn get(&self, fp: &Fingerprint) -> Result<Option<ContainerId>> {
        let Some(raw) = self.db.get(fp.as_bytes())? else {
            return Ok(None);
        };
        let arr: [u8; 8] = raw
            .as_slice()
            .try_into()
            .map_err(|_| slim_types::SlimError::corrupt("global index value", "bad length"))?;
        Ok(Some(ContainerId(u64::from_le_bytes(arr))))
    }

    /// Relocate `fp` to a new container (reverse dedup / SCC / rewrite).
    pub fn relocate(&self, fp: &Fingerprint, container: ContainerId) -> Result<()> {
        self.insert(fp, container)
    }

    /// Forget `fp` entirely (all copies collected).
    pub fn remove(&self, fp: &Fingerprint) -> Result<()> {
        self.db.delete(fp.as_bytes())
    }

    /// Fast pre-filter: false means `fp` is certainly *not* indexed, so the
    /// chunk is unique and the costly LSM lookup can be skipped (§VI-A).
    pub fn may_contain(&self, fp: &Fingerprint) -> bool {
        self.bloom.lock().may_contain(fp.prefix64())
    }

    /// Flush buffered writes to OSS.
    pub fn flush(&self) -> Result<()> {
        self.db.flush()
    }

    /// Compact the LSM.
    pub fn compact(&self) -> Result<()> {
        self.db.compact()
    }

    /// Number of SSTables currently in the LSM (exposed as the
    /// `rocks.tables` telemetry gauge).
    pub fn table_count(&self) -> usize {
        self.db.table_count()
    }

    /// Bytes buffered in the memtable (exposed as the
    /// `rocks.memtable_bytes` telemetry gauge).
    pub fn memtable_bytes(&self) -> usize {
        self.db.memtable_bytes()
    }

    /// Integrity sweep over the LSM's persistent runs: verify every
    /// SSTable's whole-object CRC32, quarantine corrupted ones, and retire
    /// SSTable objects the durable manifest no longer references (leftovers
    /// of a compaction whose post-flip deletes failed).
    ///
    /// Returns `(quarantined object keys, retired object count)`. Dropping a
    /// corrupt run *loses* the fingerprint entries it held; callers must
    /// re-derive them from container metadata (see `GNode::recover`). The
    /// bloom filter is rebuilt whenever a run was dropped, so it never
    /// over-promises against the shrunk index.
    pub fn verify_and_repair(&self) -> Result<(Vec<String>, usize)> {
        let quarantined = self.db.quarantine_corrupt_tables()?;
        let retired = self.db.retire_unreferenced_tables()?;
        if !quarantined.is_empty() {
            self.rebuild_bloom()?;
        }
        Ok((quarantined, retired))
    }

    /// Delete every index entry pointing at one of `containers` (full scan;
    /// offline use only). Returns the number of entries removed. Used when
    /// corrupt containers are quarantined: an honest `ChunkUnresolvable`
    /// beats a dangling pointer at an object that no longer decodes.
    pub fn remove_references_to(
        &self,
        containers: &std::collections::HashSet<ContainerId>,
    ) -> Result<u64> {
        if containers.is_empty() {
            return Ok(0);
        }
        let rows = self.db.scan_prefix(&[])?;
        let mut removed = 0u64;
        for (key, value) in &rows {
            let arr: [u8; 8] = value
                .as_slice()
                .try_into()
                .map_err(|_| slim_types::SlimError::corrupt("global index value", "bad length"))?;
            if containers.contains(&ContainerId(u64::from_le_bytes(arr))) {
                self.db.delete(key)?;
                removed += 1;
            }
        }
        if removed > 0 {
            self.flush()?;
        }
        Ok(removed)
    }

    /// Rebuild the resident bloom filter from the persistent state (called
    /// on open; the bloom is process state, not persisted).
    pub fn rebuild_bloom(&self) -> Result<()> {
        let rows = self.db.scan_prefix(&[])?;
        let mut bloom = BloomFilter::with_rate(rows.len().max(1024), 0.01);
        for (key, _) in &rows {
            if let Some(fp) = Fingerprint::from_slice(key) {
                bloom.insert(fp.prefix64());
            }
        }
        *self.bloom.lock() = bloom;
        Ok(())
    }

    /// Every container currently holding an authoritative chunk copy (full
    /// scan; offline use only). The G-node's orphan scrub unions this with
    /// manifest/recipe reachability before reclaiming container keys.
    pub fn referenced_containers(&self) -> Result<std::collections::HashSet<ContainerId>> {
        let rows = self.db.scan_prefix(&[])?;
        let mut out = std::collections::HashSet::with_capacity(rows.len());
        for (_, value) in &rows {
            let arr: [u8; 8] = value
                .as_slice()
                .try_into()
                .map_err(|_| slim_types::SlimError::corrupt("global index value", "bad length"))?;
            out.insert(ContainerId(u64::from_le_bytes(arr)));
        }
        Ok(out)
    }

    /// Per-container count of authoritative chunk copies (full scan;
    /// offline use only). This is the dedup-aware risk measure of the
    /// redundancy policy: a container with many live index entries holds
    /// chunks that reverse dedup made the *only* copy for every version
    /// referencing them, so losing it costs the most.
    pub fn reference_counts(&self) -> Result<std::collections::HashMap<ContainerId, u64>> {
        let rows = self.db.scan_prefix(&[])?;
        let mut out = std::collections::HashMap::new();
        for (_, value) in &rows {
            let arr: [u8; 8] = value
                .as_slice()
                .try_into()
                .map_err(|_| slim_types::SlimError::corrupt("global index value", "bad length"))?;
            *out.entry(ContainerId(u64::from_le_bytes(arr))).or_insert(0) += 1;
        }
        Ok(out)
    }

    /// Number of indexed fingerprints (full scan; offline use only).
    pub fn len(&self) -> Result<usize> {
        Ok(self.db.scan_prefix(&[])?.len())
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn open_index(oss: &Oss) -> GlobalIndex {
        GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::small_for_tests(), 1024).unwrap()
    }

    #[test]
    fn insert_get_relocate_remove() {
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        assert_eq!(idx.get(&fp(1)).unwrap(), None);
        idx.insert(&fp(1), ContainerId(10)).unwrap();
        assert_eq!(idx.get(&fp(1)).unwrap(), Some(ContainerId(10)));
        idx.relocate(&fp(1), ContainerId(22)).unwrap();
        assert_eq!(idx.get(&fp(1)).unwrap(), Some(ContainerId(22)));
        idx.remove(&fp(1)).unwrap();
        assert_eq!(idx.get(&fp(1)).unwrap(), None);
    }

    #[test]
    fn bloom_prefilter_has_no_false_negatives() {
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        for b in 0..100u8 {
            idx.insert(&fp(b), ContainerId(b as u64)).unwrap();
        }
        for b in 0..100u8 {
            assert!(idx.may_contain(&fp(b)));
        }
    }

    #[test]
    fn survives_flush_and_reopen() {
        let oss = Oss::in_memory();
        {
            let idx = open_index(&oss);
            for b in 0..50u8 {
                idx.insert(&fp(b), ContainerId(b as u64 + 100)).unwrap();
            }
            idx.flush().unwrap();
        }
        let idx = open_index(&oss);
        for b in 0..50u8 {
            assert_eq!(idx.get(&fp(b)).unwrap(), Some(ContainerId(b as u64 + 100)));
            assert!(idx.may_contain(&fp(b)), "bloom rebuilt on open");
        }
        assert_eq!(idx.len().unwrap(), 50);
        assert!(!idx.is_empty().unwrap());
    }

    #[test]
    fn referenced_containers_scans_values() {
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        assert!(idx.referenced_containers().unwrap().is_empty());
        idx.insert(&fp(1), ContainerId(5)).unwrap();
        idx.insert(&fp(2), ContainerId(5)).unwrap();
        idx.insert(&fp(3), ContainerId(9)).unwrap();
        let refs = idx.referenced_containers().unwrap();
        assert_eq!(refs.len(), 2);
        assert!(refs.contains(&ContainerId(5)) && refs.contains(&ContainerId(9)));
        idx.remove(&fp(3)).unwrap();
        assert!(!idx
            .referenced_containers()
            .unwrap()
            .contains(&ContainerId(9)));
    }

    #[test]
    fn reference_counts_weigh_entries_per_container() {
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        assert!(idx.reference_counts().unwrap().is_empty());
        idx.insert(&fp(1), ContainerId(5)).unwrap();
        idx.insert(&fp(2), ContainerId(5)).unwrap();
        idx.insert(&fp(3), ContainerId(9)).unwrap();
        let counts = idx.reference_counts().unwrap();
        assert_eq!(counts.get(&ContainerId(5)), Some(&2));
        assert_eq!(counts.get(&ContainerId(9)), Some(&1));
        idx.remove(&fp(2)).unwrap();
        assert_eq!(
            idx.reference_counts().unwrap().get(&ContainerId(5)),
            Some(&1)
        );
    }

    #[test]
    fn remove_references_to_unindexes_quarantined_containers() {
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        idx.insert(&fp(1), ContainerId(5)).unwrap();
        idx.insert(&fp(2), ContainerId(5)).unwrap();
        idx.insert(&fp(3), ContainerId(9)).unwrap();
        let doomed = std::collections::HashSet::from([ContainerId(5)]);
        assert_eq!(idx.remove_references_to(&doomed).unwrap(), 2);
        assert_eq!(idx.get(&fp(1)).unwrap(), None);
        assert_eq!(idx.get(&fp(2)).unwrap(), None);
        assert_eq!(idx.get(&fp(3)).unwrap(), Some(ContainerId(9)));
        assert_eq!(idx.remove_references_to(&doomed).unwrap(), 0);
    }

    #[test]
    fn verify_and_repair_quarantines_corrupt_runs() {
        use slim_oss::ObjectStore;
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        for b in 0..10u8 {
            idx.insert(&fp(b), ContainerId(b as u64)).unwrap();
        }
        idx.flush().unwrap();
        assert_eq!(idx.table_count(), 1);
        assert_eq!(
            idx.verify_and_repair().unwrap(),
            (Vec::new(), 0),
            "intact index passes clean"
        );
        let key = oss
            .list(layout::GLOBAL_INDEX_PREFIX)
            .into_iter()
            .find(|k| k.contains("sst/"))
            .unwrap();
        let mut buf = oss.get(&key).unwrap().to_vec();
        buf[3] ^= 0x40;
        oss.put(&key, bytes::Bytes::from(buf)).unwrap();
        let (quarantined, retired) = idx.verify_and_repair().unwrap();
        assert_eq!(quarantined, vec![key.clone()]);
        assert_eq!(retired, 0);
        assert_eq!(idx.table_count(), 0);
        assert!(oss.exists(&layout::quarantine_key(&key)).unwrap());
        assert_eq!(
            idx.get(&fp(1)).unwrap(),
            None,
            "entries of the dropped run read as absent until re-derived"
        );
    }

    #[test]
    fn unknown_fp_usually_filtered_by_bloom() {
        let oss = Oss::in_memory();
        let idx = open_index(&oss);
        for b in 0..20u8 {
            idx.insert(&fp(b), ContainerId(1)).unwrap();
        }
        let misses = (100..=255u8).filter(|&b| !idx.may_contain(&fp(b))).count();
        assert!(
            misses > 140,
            "bloom should pass most unique chunks: {misses}"
        );
    }
}
