//! The SLIMSTORE G-node: offline space management (§V-B, §VI).
//!
//! The G-node runs in the backend, independent of the online dedup/restore
//! path, and owns three responsibilities:
//!
//! * **global reverse deduplication** ([`reverse_dedup`]) — the exact dedup
//!   pass: every chunk of the containers a backup created is checked against
//!   the global fingerprint index; duplicates are removed from the *older*
//!   container, preserving new-version locality and shrinking old-version
//!   storage (§VI-A);
//! * **sparse container compaction** ([`scc`]) — containers of which the
//!   newest version uses only a small fraction are compacted: the useful
//!   chunks move into fresh containers and the current version's recipes are
//!   rewritten, so the benefit applies to the *current* version (§V-B,
//!   unlike HAR's next-version rewriting);
//! * **version collection** ([`collect`]) — the Mark phase runs at dedup
//!   time (garbage containers are associated with the version whose deletion
//!   frees them), so deleting a version is a pure Sweep (§VI-B);
//! * **orphan scrubbing** ([`collect::scrub_orphans`]) — backup jobs commit
//!   by PUTting the version manifest last, so a job killed mid-backup leaves
//!   unreachable container/recipe keys; the scrub reclaims them;
//! * **redundancy & repair** ([`redundancy`]) — a dedup-aware protection
//!   policy (full replicas for highly-referenced containers, XOR parity
//!   groups for the rest, metadata always replicated) re-tiered each cycle,
//!   plus the [`GNode::repair`] sweep that reconstructs quarantined
//!   containers from the plane and re-points the global index.
//!
//! Because every one of these passes rewrites or deletes shared objects in
//! multiple non-atomic OSS steps, each destructive step is preceded by an
//! idempotent record in the [`journal`]; [`GNode::recover`] replays
//! outstanding intents after a crash and quarantines corrupted maintenance
//! outputs, so a cycle killed at any point converges to its post-cycle state.
//!
//! [`GNode`] packages these into the offline cycle the system facade
//! schedules after each backup version.

pub mod collect;
pub mod journal;
pub mod meta_cache;
pub mod node;
pub mod redundancy;
pub mod reverse_dedup;
pub mod scc;

pub use collect::{scrub_orphans, CollectStats, OrphanScrubStats};
pub use journal::{Intent, Journal};
pub use node::{GNode, GNodeCycleStats, IntegrityReport, RecoveryReport};
pub use redundancy::{PurgeReport, RedundancyStats, RepairReport};
