//! Global reverse deduplication (§VI-A).
//!
//! Exact dedup, executed offline: every chunk in the containers a backup job
//! created is filtered against the global fingerprint index. A chunk already
//! stored in an **older** container is a duplicate the fast online path
//! missed; reverse dedup deletes the *old* copy — so the data layout of the
//! new version is preserved and the storage of old versions shrinks —
//! and repoints the global index at the new container.
//!
//! Cost controls from the paper:
//! * a resident bloom filter passes unique chunks without touching Rocks-OSS
//!   (built into [`slim_index::GlobalIndex`]);
//! * old-container metadata is cached ([`crate::meta_cache::MetaCache`]);
//! * deletion is deferred — chunks are only *marked* deleted; a container is
//!   physically rewritten once its deleted ratio exceeds the threshold
//!   (default 20 %), and deleted outright when nothing live remains.

use std::collections::HashMap;

use slim_index::GlobalIndex;
use slim_lnode::StorageLayer;
use slim_types::{ContainerBuilder, ContainerId, ContainerMeta, Fingerprint, Result, SlimConfig};

use crate::meta_cache::MetaCache;

/// Outcome of one reverse-deduplication pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReverseDedupStats {
    /// Chunks examined across the new containers.
    pub chunks_scanned: u64,
    /// Chunks the bloom filter passed as certainly-unique (no index lookup).
    pub bloom_skips: u64,
    /// Duplicate copies deleted from old containers.
    pub duplicates_removed: u64,
    /// Stale payload bytes those deletions made reclaimable.
    pub bytes_marked: u64,
    /// Containers physically rewritten (deleted ratio over threshold).
    pub containers_rewritten: u64,
    /// Containers deleted because nothing live remained.
    pub containers_deleted: u64,
    /// Bytes physically reclaimed by rewrites and deletions.
    pub bytes_reclaimed: u64,
}

/// Fingerprints whose authoritative copy moved, and where it lives now.
/// The G-node feeds this into the current version's recipe rewrite so the
/// *new* version never pays a relocation lookup (§VI-A keeps old versions on
/// the global-index path, but the latest version's recipes are improved in
/// place, like SCC's).
pub type RelocationMap = HashMap<Fingerprint, ContainerId>;

/// Run reverse deduplication over `new_containers` (the containers created
/// by the latest backup), in ascending id order.
pub fn reverse_dedup(
    storage: &StorageLayer,
    global: &GlobalIndex,
    meta_cache: &mut MetaCache,
    config: &SlimConfig,
    new_containers: &[ContainerId],
) -> Result<(ReverseDedupStats, RelocationMap)> {
    let mut stats = ReverseDedupStats::default();
    let mut ordered: Vec<ContainerId> = new_containers.to_vec();
    ordered.sort();
    let mut touched_old: Vec<ContainerId> = Vec::new();
    let mut relocations: RelocationMap = HashMap::new();

    // One batched sweep pre-loads every new container's metadata; the
    // per-container loop below then runs entirely against the cache.
    meta_cache.warm_up(&ordered);

    for &container in &ordered {
        let entries: Vec<_> = meta_cache
            .get(container)?
            .entries
            .iter()
            .filter(|e| !e.deleted)
            .copied()
            .collect();
        for entry in entries {
            stats.chunks_scanned += 1;
            // Bloom pre-filter: certainly-unique chunks skip the LSM lookup.
            if !global.may_contain(&entry.fp) {
                stats.bloom_skips += 1;
                global.insert(&entry.fp, container)?;
                continue;
            }
            match global.get(&entry.fp)? {
                None => {
                    global.insert(&entry.fp, container)?;
                }
                Some(current) if current == container => {}
                Some(old) if old < container => {
                    // Exact duplicate missed online: delete the old copy,
                    // keep the new-version layout intact.
                    let removed = meta_cache.update(old, |m| {
                        m.mark_deleted(&entry.fp)
                            .then(|| m.find(&entry.fp).map(|e| e.len as u64).unwrap_or(0))
                    })?;
                    if let Some(bytes) = removed {
                        stats.duplicates_removed += 1;
                        stats.bytes_marked += bytes;
                        touched_old.push(old);
                        relocations.insert(entry.fp, container);
                    }
                    global.relocate(&entry.fp, container)?;
                }
                Some(newer) => {
                    // Another (concurrent) job already stored this chunk in
                    // an even newer container: delete our copy instead.
                    let removed = meta_cache.update(container, |m| {
                        m.mark_deleted(&entry.fp).then(|| entry.len as u64)
                    })?;
                    if let Some(bytes) = removed {
                        stats.duplicates_removed += 1;
                        stats.bytes_marked += bytes;
                        touched_old.push(container);
                        relocations.insert(entry.fp, newer);
                    }
                }
            }
        }
    }

    // Deferred physical deletion: rewrite or drop heavily-deleted containers.
    touched_old.sort();
    touched_old.dedup();
    rewrite_sweep(storage, meta_cache, config, &touched_old, &mut stats)?;
    meta_cache.flush()?;
    global.flush()?;
    Ok((stats, relocations))
}

/// Batched equivalent of running [`maybe_rewrite`] over `ids`: fully-dead
/// containers are dropped in one batched delete, and the data objects of all
/// rewrite candidates are fetched in one batched read, so the deferred-
/// deletion phase costs a bounded number of OSS round-trips regardless of
/// how many containers a cycle touched.
fn rewrite_sweep(
    storage: &StorageLayer,
    meta_cache: &mut MetaCache,
    config: &SlimConfig,
    ids: &[ContainerId],
    stats: &mut ReverseDedupStats,
) -> Result<()> {
    let mut dead: Vec<ContainerId> = Vec::new();
    let mut rewrites: Vec<(ContainerId, ContainerMeta)> = Vec::new();
    for &id in ids {
        let meta = meta_cache.get(id)?.clone();
        if meta.live_chunks() == 0 {
            stats.containers_deleted += 1;
            stats.bytes_reclaimed += meta.data_len as u64;
            meta_cache.forget(id);
            dead.push(id);
        } else if meta.deleted_ratio() > config.container_rewrite_threshold {
            rewrites.push((id, meta));
        }
    }
    storage.delete_containers(&dead)?;
    let rewrite_ids: Vec<ContainerId> = rewrites.iter().map(|(id, _)| *id).collect();
    for ((id, meta), data) in rewrites
        .iter()
        .zip(storage.get_container_data_many(&rewrite_ids))
    {
        let data = data?;
        let mut builder = ContainerBuilder::new(*id, data.len());
        for entry in meta.entries.iter().filter(|e| !e.deleted) {
            builder.push(
                entry.fp,
                &data[entry.offset as usize..(entry.offset + entry.len) as usize],
            );
        }
        let (new_data, new_meta) = builder.seal();
        stats.containers_rewritten += 1;
        stats.bytes_reclaimed += meta.data_len as u64 - new_meta.data_len as u64;
        storage.put_container(new_data, &new_meta)?;
        meta_cache.put(new_meta);
    }
    Ok(())
}

/// Rewrite `id` without its deleted chunks once the deleted ratio exceeds
/// the configured threshold; delete it entirely when nothing live remains.
/// The container keeps its id, so recipes referencing live chunks stay valid.
pub(crate) fn maybe_rewrite(
    storage: &StorageLayer,
    meta_cache: &mut MetaCache,
    config: &SlimConfig,
    id: ContainerId,
    stats: &mut ReverseDedupStats,
) -> Result<()> {
    let meta = meta_cache.get(id)?.clone();
    if meta.live_chunks() == 0 {
        stats.containers_deleted += 1;
        stats.bytes_reclaimed += meta.data_len as u64;
        meta_cache.forget(id);
        storage.delete_container(id)?;
        return Ok(());
    }
    if meta.deleted_ratio() <= config.container_rewrite_threshold {
        return Ok(());
    }
    let data = storage.get_container_data(id)?;
    let mut builder = ContainerBuilder::new(id, data.len());
    for entry in meta.entries.iter().filter(|e| !e.deleted) {
        builder.push(
            entry.fp,
            &data[entry.offset as usize..(entry.offset + entry.len) as usize],
        );
    }
    let (new_data, new_meta) = builder.seal();
    stats.containers_rewritten += 1;
    stats.bytes_reclaimed += meta.data_len as u64 - new_meta.data_len as u64;
    storage.put_container(new_data, &new_meta)?;
    meta_cache.put(new_meta);
    Ok(())
}

/// Convenience used by tests and space accounting: live bytes across a set
/// of containers.
pub fn live_bytes(meta_cache: &mut MetaCache, containers: &[ContainerId]) -> Result<u64> {
    let mut total = 0;
    for &id in containers {
        total += meta_cache.get(id)?.live_bytes();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::rocks::RocksConfig;
    use slim_oss::Oss;
    use slim_types::Fingerprint;
    use std::sync::Arc;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    struct Env {
        storage: StorageLayer,
        global: GlobalIndex,
        config: SlimConfig,
    }

    fn setup() -> Env {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let global =
            GlobalIndex::open_with(Arc::new(oss), RocksConfig::small_for_tests(), 1024).unwrap();
        Env {
            storage,
            global,
            config: SlimConfig::small_for_tests(),
        }
    }

    fn make_container(storage: &StorageLayer, chunks: &[(u8, usize)]) -> ContainerId {
        let id = storage.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1 << 20);
        for &(tag, len) in chunks {
            b.push(fp(tag), &vec![tag; len]);
        }
        let (data, meta) = b.seal();
        storage.put_container(data, &meta).unwrap();
        id
    }

    #[test]
    fn unique_chunks_enter_global_index() {
        let env = setup();
        let c = make_container(&env.storage, &[(1, 100), (2, 100)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let (stats, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[c]).unwrap();
        assert_eq!(stats.chunks_scanned, 2);
        assert_eq!(stats.duplicates_removed, 0);
        assert_eq!(env.global.get(&fp(1)).unwrap(), Some(c));
        assert_eq!(env.global.get(&fp(2)).unwrap(), Some(c));
    }

    #[test]
    fn duplicate_removed_from_old_container() {
        let env = setup();
        let old = make_container(&env.storage, &[(1, 100), (2, 100), (3, 100)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[old]).unwrap();
        // A new container re-stores chunk 2 (missed duplicate).
        let new = make_container(&env.storage, &[(2, 100), (4, 100)]);
        let (stats, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[new]).unwrap();
        assert_eq!(stats.duplicates_removed, 1);
        assert_eq!(stats.bytes_marked, 100);
        // Old copy marked deleted; index points at the new container.
        let old_meta = env.storage.get_container_meta(old).unwrap();
        assert!(old_meta.find_live(&fp(2)).is_none());
        assert!(old_meta.find_live(&fp(1)).is_some());
        assert_eq!(env.global.get(&fp(2)).unwrap(), Some(new));
        // New container untouched.
        let new_meta = env.storage.get_container_meta(new).unwrap();
        assert!(new_meta.find_live(&fp(2)).is_some());
    }

    #[test]
    fn heavy_deletion_triggers_rewrite() {
        let env = setup();
        let old = make_container(&env.storage, &[(1, 100), (2, 100), (3, 100)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[old]).unwrap();
        // Re-store two of the three chunks: 2/3 deleted > 20% threshold.
        let new = make_container(&env.storage, &[(1, 100), (2, 100)]);
        let (stats, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[new]).unwrap();
        assert_eq!(stats.duplicates_removed, 2);
        assert_eq!(stats.containers_rewritten, 1);
        assert!(stats.bytes_reclaimed >= 200);
        // Rewritten container holds only chunk 3, same id.
        let meta = env.storage.get_container_meta(old).unwrap();
        assert_eq!(meta.total_chunks(), 1);
        assert!(meta.find_live(&fp(3)).is_some());
        // Its data object shrank and offsets remain valid.
        let data = env.storage.get_container_data(old).unwrap();
        assert_eq!(data.len(), 100);
    }

    #[test]
    fn fully_duplicated_container_is_deleted() {
        let env = setup();
        let old = make_container(&env.storage, &[(1, 50), (2, 50)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[old]).unwrap();
        let new = make_container(&env.storage, &[(1, 50), (2, 50)]);
        let (stats, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[new]).unwrap();
        assert_eq!(stats.containers_deleted, 1);
        assert!(!env.storage.container_exists(old).unwrap());
        assert_eq!(env.global.get(&fp(1)).unwrap(), Some(new));
    }

    #[test]
    fn idempotent_on_repeat() {
        let env = setup();
        let c = make_container(&env.storage, &[(7, 64)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let (s1, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[c]).unwrap();
        let (s2, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[c]).unwrap();
        assert_eq!(s1.duplicates_removed, 0);
        assert_eq!(s2.duplicates_removed, 0, "self-match must not delete");
        assert_eq!(env.global.get(&fp(7)).unwrap(), Some(c));
    }

    #[test]
    fn duplicate_within_new_batch_keeps_newest() {
        let env = setup();
        let a = make_container(&env.storage, &[(5, 40)]);
        let b = make_container(&env.storage, &[(5, 40), (6, 40)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let (stats, _) =
            reverse_dedup(&env.storage, &env.global, &mut cache, &env.config, &[a, b]).unwrap();
        assert_eq!(stats.duplicates_removed, 1);
        assert_eq!(env.global.get(&fp(5)).unwrap(), Some(b));
        // Container a lost its only chunk and was deleted.
        assert!(!env.storage.container_exists(a).unwrap());
    }
}
