//! Global reverse deduplication (§VI-A).
//!
//! Exact dedup, executed offline: every chunk in the containers a backup job
//! created is filtered against the global fingerprint index. A chunk already
//! stored in an **older** container is a duplicate the fast online path
//! missed; reverse dedup deletes the *old* copy — so the data layout of the
//! new version is preserved and the storage of old versions shrinks —
//! and repoints the global index at the new container.
//!
//! Cost controls from the paper:
//! * a resident bloom filter passes unique chunks without touching Rocks-OSS
//!   (built into [`slim_index::GlobalIndex`]);
//! * old-container metadata is cached ([`crate::meta_cache::MetaCache`]);
//! * deletion is deferred — chunks are only *marked* deleted; a container is
//!   physically rewritten once its deleted ratio exceeds the threshold
//!   (default 20 %), and deleted outright when nothing live remains.
//!
//! Crash safety: rewrites are **two-phase with fresh ids**. The surviving
//! chunks are written to a *new* container, the index flips to it, and only
//! then is the old object deleted — an in-place rewrite would have no intact
//! copy to fall back to if the overwrite were torn. Every destructive step
//! is preceded by a [`crate::journal`] intent so a killed pass either rolls
//! forward (new container intact) or back (old container still whole).

use std::collections::HashMap;

use slim_index::GlobalIndex;
use slim_lnode::StorageLayer;
use slim_types::{ContainerBuilder, ContainerId, ContainerMeta, Fingerprint, Result, SlimConfig};

use crate::journal::{Intent, Journal};
use crate::meta_cache::MetaCache;

/// Outcome of one reverse-deduplication pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReverseDedupStats {
    /// Chunks examined across the new containers.
    pub chunks_scanned: u64,
    /// Chunks the bloom filter passed as certainly-unique (no index lookup).
    pub bloom_skips: u64,
    /// Duplicate copies deleted from old containers.
    pub duplicates_removed: u64,
    /// Stale payload bytes those deletions made reclaimable.
    pub bytes_marked: u64,
    /// Containers physically rewritten (deleted ratio over threshold).
    pub containers_rewritten: u64,
    /// Containers deleted because nothing live remained.
    pub containers_deleted: u64,
    /// Bytes physically reclaimed by rewrites and deletions.
    pub bytes_reclaimed: u64,
}

/// Fingerprints whose authoritative copy moved, and where it lives now.
/// The G-node feeds this into the current version's recipe rewrite so the
/// *new* version never pays a relocation lookup (§VI-A keeps old versions on
/// the global-index path, but the latest version's recipes are improved in
/// place, like SCC's).
pub type RelocationMap = HashMap<Fingerprint, ContainerId>;

/// Run reverse deduplication over `new_containers` (the containers created
/// by the latest backup), in ascending id order.
pub fn reverse_dedup(
    storage: &StorageLayer,
    global: &GlobalIndex,
    meta_cache: &mut MetaCache,
    journal: &Journal,
    config: &SlimConfig,
    new_containers: &[ContainerId],
) -> Result<(ReverseDedupStats, RelocationMap)> {
    let mut stats = ReverseDedupStats::default();
    let mut ordered: Vec<ContainerId> = new_containers.to_vec();
    ordered.sort();
    let mut touched_old: Vec<ContainerId> = Vec::new();
    let mut relocations: RelocationMap = HashMap::new();

    // One batched sweep pre-loads every new container's metadata; the
    // per-container loop below then runs entirely against the cache.
    meta_cache.warm_up(&ordered);

    for &container in &ordered {
        let entries: Vec<_> = meta_cache
            .get(container)?
            .entries
            .iter()
            .filter(|e| !e.deleted)
            .copied()
            .collect();
        for entry in entries {
            stats.chunks_scanned += 1;
            // Bloom pre-filter: certainly-unique chunks skip the LSM lookup.
            if !global.may_contain(&entry.fp) {
                stats.bloom_skips += 1;
                global.insert(&entry.fp, container)?;
                continue;
            }
            match global.get(&entry.fp)? {
                None => {
                    global.insert(&entry.fp, container)?;
                }
                Some(current) if current == container => {}
                Some(old) if old < container => {
                    // Exact duplicate missed online: delete the old copy,
                    // keep the new-version layout intact.
                    let removed = meta_cache.update(old, |m| {
                        m.mark_deleted(&entry.fp)
                            .then(|| m.find(&entry.fp).map(|e| e.len as u64).unwrap_or(0))
                    })?;
                    if let Some(bytes) = removed {
                        stats.duplicates_removed += 1;
                        stats.bytes_marked += bytes;
                        touched_old.push(old);
                        relocations.insert(entry.fp, container);
                    }
                    global.relocate(&entry.fp, container)?;
                }
                Some(newer) => {
                    // Another (concurrent) job already stored this chunk in
                    // an even newer container: delete our copy instead.
                    let removed = meta_cache.update(container, |m| {
                        m.mark_deleted(&entry.fp).then(|| entry.len as u64)
                    })?;
                    if let Some(bytes) = removed {
                        stats.duplicates_removed += 1;
                        stats.bytes_marked += bytes;
                        touched_old.push(container);
                        relocations.insert(entry.fp, newer);
                    }
                }
            }
        }
    }

    // Deferred physical deletion: rewrite or drop heavily-deleted containers.
    touched_old.sort();
    touched_old.dedup();

    let mut dead: Vec<ContainerId> = Vec::new();
    let mut rewrites: Vec<(ContainerId, ContainerMeta)> = Vec::new();
    for &id in &touched_old {
        let meta = meta_cache.get(id)?.clone();
        if meta.live_chunks() == 0 {
            stats.containers_deleted += 1;
            stats.bytes_reclaimed += meta.data_len as u64;
            meta_cache.forget(id);
            dead.push(id);
        } else if meta.deleted_ratio() > config.container_rewrite_threshold {
            rewrites.push((id, meta));
        }
    }

    let mut seqs: Vec<u64> = Vec::new();
    // Intent first: the marks above become durable with the meta flush, so
    // the index flips must survive a crash before the global flush lands.
    if !relocations.is_empty() {
        seqs.push(journal.record(&Intent::RepointIndex {
            entries: relocations.iter().map(|(fp, id)| (*fp, *id)).collect(),
        })?);
    }

    // Two-phase rewrites: survivors move to fresh containers (one batched
    // data read for all candidates), the index flips, and the old objects
    // are deleted only after both flushes below are durable.
    let rewrite_ids: Vec<ContainerId> = rewrites.iter().map(|(id, _)| *id).collect();
    let mut retired: Vec<ContainerId> = Vec::new();
    for ((old, meta), data) in rewrites
        .iter()
        .zip(storage.get_container_data_many(&rewrite_ids))
    {
        let data = data?;
        let new_id = storage.allocate_container_id();
        seqs.push(journal.record(&Intent::RewriteContainer {
            old: *old,
            new: new_id,
        })?);
        let mut builder = ContainerBuilder::new(new_id, meta.live_raw_bytes() as usize)
            .with_compression(config.compression);
        for entry in meta.entries.iter().filter(|e| !e.deleted) {
            // Decompress through the validated accessor and recompress under
            // the current knob: rewrites are also the migration path between
            // compressed and uncompressed repos.
            builder.push(entry.fp, &entry.payload_from(&data)?);
        }
        let (new_data, new_meta) = builder.seal();
        storage.put_container(new_data, &new_meta)?;
        for entry in new_meta.entries.iter() {
            global.relocate(&entry.fp, new_id)?;
            relocations.insert(entry.fp, new_id);
        }
        stats.containers_rewritten += 1;
        // Saturating: rewriting a compressed container with compression now
        // off legitimately grows the data object.
        stats.bytes_reclaimed += (meta.data_len as u64).saturating_sub(new_meta.data_len as u64);
        meta_cache.put(new_meta);
        meta_cache.forget(*old);
        retired.push(*old);
    }

    if !dead.is_empty() {
        seqs.push(journal.record(&Intent::DropContainers { ids: dead.clone() })?);
    }

    // Commit: marks and index flips become durable, then the now-
    // unreferenced old objects go, then the journal's promise is discharged.
    meta_cache.flush()?;
    global.flush()?;
    let mut doomed = retired;
    doomed.extend(dead);
    storage.delete_containers(&doomed)?;
    for seq in seqs {
        journal.retire(seq)?;
    }
    Ok((stats, relocations))
}

/// Rewrite `id` without its deleted chunks once the deleted ratio exceeds
/// the configured threshold; delete it entirely when nothing live remains.
///
/// Self-contained journaled two-phase primitive (used by SCC and vacuum):
/// records its intent, writes the replacement container under a **fresh id**,
/// flips the global index, flushes both the metadata cache and the index,
/// and only then deletes the old object and retires the intent. Recipes
/// still naming the old id resolve through the global-index fallback on the
/// restore path.
pub(crate) fn maybe_rewrite(
    storage: &StorageLayer,
    global: &GlobalIndex,
    meta_cache: &mut MetaCache,
    journal: &Journal,
    config: &SlimConfig,
    id: ContainerId,
    stats: &mut ReverseDedupStats,
) -> Result<()> {
    let meta = meta_cache.get(id)?.clone();
    if meta.live_chunks() == 0 {
        stats.containers_deleted += 1;
        stats.bytes_reclaimed += meta.data_len as u64;
        meta_cache.forget(id);
        let seq = journal.record(&Intent::DropContainers { ids: vec![id] })?;
        // The relocations that emptied this container may still be buffered;
        // make them durable before the object disappears (no dangle).
        meta_cache.flush()?;
        global.flush()?;
        storage.delete_container(id)?;
        journal.retire(seq)?;
        return Ok(());
    }
    if meta.deleted_ratio() <= config.container_rewrite_threshold {
        return Ok(());
    }
    let data = storage.get_container_data(id)?;
    let new_id = storage.allocate_container_id();
    let seq = journal.record(&Intent::RewriteContainer {
        old: id,
        new: new_id,
    })?;
    let mut builder = ContainerBuilder::new(new_id, meta.live_raw_bytes() as usize)
        .with_compression(config.compression);
    for entry in meta.entries.iter().filter(|e| !e.deleted) {
        builder.push(entry.fp, &entry.payload_from(&data)?);
    }
    let (new_data, new_meta) = builder.seal();
    storage.put_container(new_data, &new_meta)?;
    for entry in new_meta.entries.iter() {
        global.relocate(&entry.fp, new_id)?;
    }
    stats.containers_rewritten += 1;
    stats.bytes_reclaimed += (meta.data_len as u64).saturating_sub(new_meta.data_len as u64);
    meta_cache.put(new_meta);
    meta_cache.forget(id);
    meta_cache.flush()?;
    global.flush()?;
    storage.delete_container(id)?;
    journal.retire(seq)?;
    Ok(())
}

/// Convenience used by tests and space accounting: live bytes across a set
/// of containers.
pub fn live_bytes(meta_cache: &mut MetaCache, containers: &[ContainerId]) -> Result<u64> {
    let mut total = 0;
    for &id in containers {
        total += meta_cache.get(id)?.live_bytes();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::rocks::RocksConfig;
    use slim_oss::Oss;
    use slim_types::Fingerprint;
    use std::sync::Arc;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    struct Env {
        storage: StorageLayer,
        global: GlobalIndex,
        journal: Journal,
        config: SlimConfig,
    }

    fn setup() -> Env {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let global =
            GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::small_for_tests(), 1024)
                .unwrap();
        Env {
            storage,
            global,
            journal: Journal::open(Arc::new(oss)),
            config: SlimConfig::small_for_tests(),
        }
    }

    fn run(
        env: &Env,
        cache: &mut MetaCache,
        new: &[ContainerId],
    ) -> (ReverseDedupStats, RelocationMap) {
        let out = reverse_dedup(
            &env.storage,
            &env.global,
            cache,
            &env.journal,
            &env.config,
            new,
        )
        .unwrap();
        assert!(
            env.journal.is_empty(),
            "a completed pass must retire all of its intents"
        );
        out
    }

    fn make_container(storage: &StorageLayer, chunks: &[(u8, usize)]) -> ContainerId {
        let id = storage.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1 << 20);
        for &(tag, len) in chunks {
            b.push(fp(tag), &vec![tag; len]);
        }
        let (data, meta) = b.seal();
        storage.put_container(data, &meta).unwrap();
        id
    }

    #[test]
    fn unique_chunks_enter_global_index() {
        let env = setup();
        let c = make_container(&env.storage, &[(1, 100), (2, 100)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let (stats, _) = run(&env, &mut cache, &[c]);
        assert_eq!(stats.chunks_scanned, 2);
        assert_eq!(stats.duplicates_removed, 0);
        assert_eq!(env.global.get(&fp(1)).unwrap(), Some(c));
        assert_eq!(env.global.get(&fp(2)).unwrap(), Some(c));
    }

    #[test]
    fn duplicate_removed_from_old_container() {
        let env = setup();
        let old = make_container(&env.storage, &[(1, 100), (2, 100), (3, 100)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = run(&env, &mut cache, &[old]);
        // A new container re-stores chunk 2 (missed duplicate).
        let new = make_container(&env.storage, &[(2, 100), (4, 100)]);
        let (stats, _) = run(&env, &mut cache, &[new]);
        assert_eq!(stats.duplicates_removed, 1);
        assert_eq!(stats.bytes_marked, 100);
        // Old copy marked deleted; index points at the new container.
        let old_meta = env.storage.get_container_meta(old).unwrap();
        assert!(old_meta.find_live(&fp(2)).is_none());
        assert!(old_meta.find_live(&fp(1)).is_some());
        assert_eq!(env.global.get(&fp(2)).unwrap(), Some(new));
        // New container untouched.
        let new_meta = env.storage.get_container_meta(new).unwrap();
        assert!(new_meta.find_live(&fp(2)).is_some());
    }

    #[test]
    fn heavy_deletion_triggers_two_phase_rewrite() {
        let env = setup();
        let old = make_container(&env.storage, &[(1, 100), (2, 100), (3, 100)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = run(&env, &mut cache, &[old]);
        // Re-store two of the three chunks: 2/3 deleted > 20% threshold.
        let new = make_container(&env.storage, &[(1, 100), (2, 100)]);
        let (stats, relocations) = run(&env, &mut cache, &[new]);
        assert_eq!(stats.duplicates_removed, 2);
        assert_eq!(stats.containers_rewritten, 1);
        assert!(stats.bytes_reclaimed >= 200);
        // The survivor (chunk 3) moved to a fresh container; the old object
        // is gone and both the index and the relocation map flipped.
        let home = env.global.get(&fp(3)).unwrap().expect("chunk 3 indexed");
        assert_ne!(home, old, "rewrite must use a fresh container id");
        assert!(!env.storage.container_exists(old).unwrap());
        assert_eq!(relocations.get(&fp(3)), Some(&home));
        let meta = env.storage.get_container_meta(home).unwrap();
        assert_eq!(meta.total_chunks(), 1);
        assert!(meta.find_live(&fp(3)).is_some());
        let data = env.storage.get_container_data(home).unwrap();
        assert_eq!(data.len(), 100);
    }

    #[test]
    fn rewrite_recompresses_under_current_knob() {
        // An uncompressed (pre-upgrade) container whose survivors are
        // rewritten with compression on: the rewrite is the migration path.
        let mut env = setup();
        env.config.compression = true;
        let old = make_container(&env.storage, &[(1, 400), (2, 400), (3, 400)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = run(&env, &mut cache, &[old]);
        let new = make_container(&env.storage, &[(1, 400), (2, 400)]);
        let (stats, _) = run(&env, &mut cache, &[new]);
        assert_eq!(stats.containers_rewritten, 1);
        let home = env.global.get(&fp(3)).unwrap().expect("chunk 3 indexed");
        let meta = env.storage.get_container_meta(home).unwrap();
        let entry = *meta.find_live(&fp(3)).unwrap();
        assert!(entry.is_compressed(), "constant bytes must compress");
        assert_eq!(entry.raw_len, 400);
        let data = env.storage.get_container_data(home).unwrap();
        assert_eq!(data.len(), meta.data_len as usize);
        assert!(data.len() < 400, "rewritten object shrinks");
        assert_eq!(entry.payload_from(&data).unwrap(), vec![3u8; 400]);
    }

    #[test]
    fn compression_off_rewrite_decompresses_without_underflow() {
        // The inverse migration: a compressed container rewritten with the
        // knob off. The survivor grows past the old (compressed) data_len,
        // so `bytes_reclaimed` must saturate instead of underflowing.
        let env = setup();
        let id = env.storage.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1 << 20).with_compression(true);
        for tag in 1u8..=3 {
            let payload = vec![tag; 300];
            b.push(fp(tag), &payload);
        }
        let (data, meta) = b.seal();
        assert!((meta.data_len as usize) < 900, "seed container compressed");
        env.storage.put_container(data, &meta).unwrap();
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = run(&env, &mut cache, &[id]);
        let new = make_container(&env.storage, &[(1, 300), (2, 300)]);
        let (stats, _) = run(&env, &mut cache, &[new]);
        assert_eq!(stats.containers_rewritten, 1);
        let home = env.global.get(&fp(3)).unwrap().expect("chunk 3 indexed");
        let meta = env.storage.get_container_meta(home).unwrap();
        let entry = *meta.find_live(&fp(3)).unwrap();
        assert!(!entry.is_compressed(), "knob off stores raw");
        let data = env.storage.get_container_data(home).unwrap();
        assert_eq!(entry.payload_from(&data).unwrap(), vec![3u8; 300]);
    }

    #[test]
    fn fully_duplicated_container_is_deleted() {
        let env = setup();
        let old = make_container(&env.storage, &[(1, 50), (2, 50)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let _ = run(&env, &mut cache, &[old]);
        let new = make_container(&env.storage, &[(1, 50), (2, 50)]);
        let (stats, _) = run(&env, &mut cache, &[new]);
        assert_eq!(stats.containers_deleted, 1);
        assert!(!env.storage.container_exists(old).unwrap());
        assert_eq!(env.global.get(&fp(1)).unwrap(), Some(new));
    }

    #[test]
    fn idempotent_on_repeat() {
        let env = setup();
        let c = make_container(&env.storage, &[(7, 64)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let (s1, _) = run(&env, &mut cache, &[c]);
        let (s2, _) = run(&env, &mut cache, &[c]);
        assert_eq!(s1.duplicates_removed, 0);
        assert_eq!(s2.duplicates_removed, 0, "self-match must not delete");
        assert_eq!(env.global.get(&fp(7)).unwrap(), Some(c));
    }

    #[test]
    fn duplicate_within_new_batch_keeps_newest() {
        let env = setup();
        let a = make_container(&env.storage, &[(5, 40)]);
        let b = make_container(&env.storage, &[(5, 40), (6, 40)]);
        let mut cache = MetaCache::new(env.storage.clone(), 8);
        let (stats, _) = run(&env, &mut cache, &[a, b]);
        assert_eq!(stats.duplicates_removed, 1);
        assert_eq!(env.global.get(&fp(5)).unwrap(), Some(b));
        // Container a lost its only chunk and was deleted.
        assert!(!env.storage.container_exists(a).unwrap());
    }
}
