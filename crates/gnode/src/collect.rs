//! Version collection (§VI-B).
//!
//! The Mark phase is folded into deduplication time: after version N+1 is
//! backed up, the containers referenced by version N but not by N+1 are
//! recorded in N's manifest as `garbage_on_delete` (they are invisible to
//! every subsequent version, which dedups against N+1). Sparse containers
//! compacted while backing up N are recorded the same way by
//! [`crate::scc`]. Deleting a version is then a pure Sweep: drop the
//! associated garbage containers, the version's recipes and its manifest.
//!
//! Deletion is FIFO (oldest version first) — the retention-window model of
//! the paper ("only preserve the last 10 versions") — which is what makes
//! the marking sound: when version N is swept, every version ≤ N is already
//! gone, and no version > N references N's garbage.

use std::collections::HashSet;

use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::StorageLayer;
use slim_types::{ContainerId, Result, SlimError, VersionId};

/// Outcome of sweeping one version.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Garbage containers deleted.
    pub containers_deleted: u64,
    /// Bytes reclaimed (container data + metadata).
    pub bytes_reclaimed: u64,
    /// Recipe objects deleted.
    pub recipes_deleted: u64,
}

/// Mark phase: record in version `n`'s manifest the containers it references
/// that version `n_plus_1` no longer does. Call after `n_plus_1` finishes.
pub fn mark_unreferenced(
    storage: &StorageLayer,
    n: VersionId,
    n_plus_1: VersionId,
) -> Result<u64> {
    let refs_of = |v: VersionId| -> Result<HashSet<ContainerId>> {
        let manifest = storage.get_manifest(v)?;
        let mut refs = HashSet::new();
        for file in &manifest.files {
            let recipe = storage.get_recipe(&file.file, v)?;
            refs.extend(recipe.records().map(|r| r.container_id));
        }
        Ok(refs)
    };
    let old_refs = refs_of(n)?;
    let new_refs = refs_of(n_plus_1)?;
    let mut manifest = storage.get_manifest(n)?;
    let already: HashSet<ContainerId> = manifest.garbage_on_delete.iter().copied().collect();
    let mut marked = 0u64;
    for &container in &old_refs {
        if !new_refs.contains(&container) && !already.contains(&container) {
            manifest.garbage_on_delete.push(container);
            marked += 1;
        }
    }
    if marked > 0 {
        storage.put_manifest(&manifest)?;
    }
    Ok(marked)
}

/// Append compacted sparse containers to a version's garbage list (called by
/// the G-node after SCC).
pub fn mark_sparse_garbage(
    storage: &StorageLayer,
    version: VersionId,
    sparse: &[ContainerId],
) -> Result<()> {
    if sparse.is_empty() {
        return Ok(());
    }
    let mut manifest = storage.get_manifest(version)?;
    let already: HashSet<ContainerId> = manifest.garbage_on_delete.iter().copied().collect();
    for &c in sparse {
        if !already.contains(&c) {
            manifest.garbage_on_delete.push(c);
        }
    }
    storage.put_manifest(&manifest)
}

/// Sweep phase: delete version `v` — its garbage containers, recipes,
/// manifest, and (for files whose last version this was) similar-index
/// registrations. Enforces FIFO deletion: `v` must be the oldest stored
/// version.
pub fn collect_version(
    storage: &StorageLayer,
    global: &GlobalIndex,
    similar: &SimilarFileIndex,
    v: VersionId,
) -> Result<CollectStats> {
    let versions = storage.list_versions();
    match versions.first() {
        Some(&oldest) if oldest == v => {}
        Some(&oldest) => {
            return Err(SlimError::InvalidConfig(format!(
                "version collection is FIFO: cannot delete {v} while {oldest} exists"
            )));
        }
        None => return Err(SlimError::VersionNotFound(v.0)),
    }
    let manifest = storage.get_manifest(v)?;
    let mut stats = CollectStats::default();

    for &container in &manifest.garbage_on_delete {
        if !storage.container_exists(container) {
            continue; // already reclaimed (e.g. emptied by reverse dedup)
        }
        let meta = storage.get_container_meta(container)?;
        // Unindex fingerprints whose authoritative copy dies with this
        // container.
        for entry in &meta.entries {
            if global.get(&entry.fp)? == Some(container) {
                global.remove(&entry.fp)?;
            }
        }
        stats.bytes_reclaimed += meta.data_len as u64 + meta.encode().len() as u64;
        storage.delete_container(container)?;
        stats.containers_deleted += 1;
    }

    for file in &manifest.files {
        storage.delete_recipe(&file.file, v)?;
        stats.recipes_deleted += 1;
        // If no newer version of this file exists, forget it entirely.
        if similar.latest_version(&file.file) == Some(v) {
            similar.remove(&file.file);
        }
    }
    storage.delete_manifest(v)?;
    global.flush()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::backup::BackupPipeline;
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::rocks::RocksConfig;
    use slim_oss::Oss;
    use slim_types::{FileId, SlimConfig, VersionManifest};
    use std::sync::Arc;

    struct Env {
        storage: StorageLayer,
        similar: SimilarFileIndex,
        global: GlobalIndex,
        config: SlimConfig,
    }

    fn setup() -> Env {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let global =
            GlobalIndex::open_with(Arc::new(oss), RocksConfig::small_for_tests(), 4096).unwrap();
        Env {
            storage,
            similar: SimilarFileIndex::new(),
            global,
            config: SlimConfig::small_for_tests(),
        }
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    impl Env {
        fn backup_version(&self, version: u64, files: &[(&FileId, &[u8])]) {
            let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.config));
            let pipeline =
                BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.config);
            let mut manifest = VersionManifest::new(VersionId(version));
            for (file, bytes) in files {
                let out = pipeline.backup_file(file, VersionId(version), bytes).unwrap();
                manifest.files.push(out.info);
                manifest.new_containers.extend(out.new_containers);
            }
            self.storage.put_manifest(&manifest).unwrap();
        }

        fn restore(&self, file: &FileId, version: u64) -> Vec<u8> {
            RestoreEngine::new(&self.storage, Some(&self.global))
                .restore_file(file, VersionId(version), &RestoreOptions::from_config(&self.config))
                .unwrap()
                .0
        }
    }

    #[test]
    fn mark_identifies_dropped_containers() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(1, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        // v1 rewrites the file completely: v0's containers become invisible.
        let v1 = data(2, 40_000);
        env.backup_version(1, &[(&file, &v1)]);
        let marked = mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        assert!(marked > 0, "fully-rewritten file must orphan containers");
        let manifest = env.storage.get_manifest(VersionId(0)).unwrap();
        assert_eq!(manifest.garbage_on_delete.len() as u64, marked);
        // Marking again adds nothing (idempotent).
        let again = mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn mark_keeps_shared_containers() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(3, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        env.backup_version(1, &[(&file, &v0)]); // identical: everything shared
        let marked = mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        assert_eq!(marked, 0, "shared containers must not be marked");
    }

    #[test]
    fn sweep_reclaims_space_and_preserves_survivors() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(4, 40_000);
        let v1 = data(5, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        env.backup_version(1, &[(&file, &v1)]);
        mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        let before = env.storage.container_store_bytes();
        let stats =
            collect_version(&env.storage, &env.global, &env.similar, VersionId(0)).unwrap();
        assert!(stats.containers_deleted > 0);
        assert!(stats.recipes_deleted >= 1);
        let after = env.storage.container_store_bytes();
        assert!(after < before, "sweep must reclaim bytes: {before} -> {after}");
        // v1 still restores; v0 is gone.
        assert_eq!(env.restore(&file, 1), v1);
        assert!(env.storage.get_recipe(&file, VersionId(0)).is_err());
        assert!(matches!(
            env.storage.get_manifest(VersionId(0)),
            Err(SlimError::VersionNotFound(0))
        ));
    }

    #[test]
    fn fifo_order_enforced() {
        let env = setup();
        let file = FileId::new("f");
        env.backup_version(0, &[(&file, &data(6, 10_000))]);
        env.backup_version(1, &[(&file, &data(7, 10_000))]);
        let err = collect_version(&env.storage, &env.global, &env.similar, VersionId(1))
            .unwrap_err();
        assert!(matches!(err, SlimError::InvalidConfig(_)));
        assert!(matches!(
            collect_version(&env.storage, &env.global, &env.similar, VersionId(9)),
            Err(SlimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn last_version_of_file_clears_similar_index() {
        let env = setup();
        let file = FileId::new("only");
        env.backup_version(0, &[(&file, &data(8, 20_000))]);
        assert_eq!(env.similar.latest_version(&file), Some(VersionId(0)));
        collect_version(&env.storage, &env.global, &env.similar, VersionId(0)).unwrap();
        assert_eq!(env.similar.latest_version(&file), None);
    }

    #[test]
    fn collect_missing_version_errors() {
        let env = setup();
        assert!(matches!(
            collect_version(&env.storage, &env.global, &env.similar, VersionId(0)),
            Err(SlimError::VersionNotFound(0))
        ));
    }
}
