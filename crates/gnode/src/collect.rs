//! Version collection (§VI-B).
//!
//! The Mark phase is folded into deduplication time: after version N+1 is
//! backed up, the containers referenced by version N but not by N+1 are
//! recorded in N's manifest as `garbage_on_delete` (they are invisible to
//! every subsequent version, which dedups against N+1). Sparse containers
//! compacted while backing up N are recorded the same way by
//! [`crate::scc`]. Deleting a version is then a pure Sweep: drop the
//! associated garbage containers, the version's recipes and its manifest.
//!
//! Deletion is FIFO (oldest version first) — the retention-window model of
//! the paper ("only preserve the last 10 versions") — which is what makes
//! the marking sound: when version N is swept, every version ≤ N is already
//! gone, and no version > N references N's garbage.

use std::collections::HashSet;

use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::StorageLayer;
use slim_types::{layout, ContainerId, Result, SlimError, VersionId};

use crate::journal::{Intent, Journal};

/// Outcome of sweeping one version.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Garbage containers deleted.
    pub containers_deleted: u64,
    /// Bytes reclaimed (container data + metadata).
    pub bytes_reclaimed: u64,
    /// Recipe objects deleted.
    pub recipes_deleted: u64,
}

/// Mark phase: record in version `n`'s manifest the containers it references
/// that version `n_plus_1` no longer does. Call after `n_plus_1` finishes.
pub fn mark_unreferenced(storage: &StorageLayer, n: VersionId, n_plus_1: VersionId) -> Result<u64> {
    let refs_of = |v: VersionId| -> Result<HashSet<ContainerId>> {
        let manifest = storage.get_manifest(v)?;
        let mut refs = HashSet::new();
        for file in &manifest.files {
            let recipe = storage.get_recipe(&file.file, v)?;
            refs.extend(recipe.records().map(|r| r.container_id));
        }
        Ok(refs)
    };
    let old_refs = refs_of(n)?;
    let new_refs = refs_of(n_plus_1)?;
    let mut manifest = storage.get_manifest(n)?;
    let already: HashSet<ContainerId> = manifest.garbage_on_delete.iter().copied().collect();
    let mut marked = 0u64;
    for &container in &old_refs {
        if !new_refs.contains(&container) && !already.contains(&container) {
            manifest.garbage_on_delete.push(container);
            marked += 1;
        }
    }
    if marked > 0 {
        storage.put_manifest(&manifest)?;
    }
    Ok(marked)
}

/// Append compacted sparse containers to a version's garbage list (called by
/// the G-node after SCC).
pub fn mark_sparse_garbage(
    storage: &StorageLayer,
    version: VersionId,
    sparse: &[ContainerId],
) -> Result<()> {
    if sparse.is_empty() {
        return Ok(());
    }
    let mut manifest = storage.get_manifest(version)?;
    let already: HashSet<ContainerId> = manifest.garbage_on_delete.iter().copied().collect();
    for &c in sparse {
        if !already.contains(&c) {
            manifest.garbage_on_delete.push(c);
        }
    }
    storage.put_manifest(&manifest)
}

/// Sweep phase: delete version `v` — its garbage containers, recipes,
/// manifest, and (for files whose last version this was) similar-index
/// registrations. Enforces FIFO deletion: `v` must be the oldest stored
/// version.
///
/// Crash safety: the index removals are flushed *before* any container is
/// deleted (a durable index must never point at a deleted object), and the
/// deletes themselves ride behind a journal `DropContainers` intent so a
/// killed sweep re-deletes on recovery. A crash mid-sweep can leave `v`'s
/// recipes/manifest behind with its containers already gone; re-running the
/// sweep converges (missing containers are skipped).
pub fn collect_version(
    storage: &StorageLayer,
    global: &GlobalIndex,
    similar: &SimilarFileIndex,
    journal: &Journal,
    v: VersionId,
) -> Result<CollectStats> {
    let versions = storage.list_versions();
    match versions.first() {
        Some(&oldest) if oldest == v => {}
        Some(&oldest) => {
            return Err(SlimError::InvalidConfig(format!(
                "version collection is FIFO: cannot delete {v} while {oldest} exists"
            )));
        }
        None => return Err(SlimError::VersionNotFound(v.0)),
    }
    let manifest = storage.get_manifest(v)?;
    let mut stats = CollectStats::default();

    // One batched sweep reads every garbage container's metadata; a second
    // batched sweep deletes the doomed objects. Already-reclaimed containers
    // (e.g. emptied by reverse dedup) surface as `ContainerMissing` and are
    // skipped.
    let garbage = &manifest.garbage_on_delete;
    let mut doomed: Vec<ContainerId> = Vec::new();
    for (&container, meta) in garbage.iter().zip(storage.get_container_meta_many(garbage)) {
        let meta = match meta {
            Ok(meta) => meta,
            Err(SlimError::ContainerMissing(_)) => continue,
            Err(other) => return Err(other),
        };
        // Unindex fingerprints whose authoritative copy dies with this
        // container.
        for entry in &meta.entries {
            if global.get(&entry.fp)? == Some(container) {
                global.remove(&entry.fp)?;
            }
        }
        stats.bytes_reclaimed += meta.data_len as u64 + meta.encode().len() as u64;
        doomed.push(container);
    }
    // Make the removals durable before anything disappears, then promise the
    // deletes so a killed sweep finishes them on recovery.
    global.flush()?;
    let seq = if doomed.is_empty() {
        None
    } else {
        Some(journal.record(&Intent::DropContainers {
            ids: doomed.clone(),
        })?)
    };
    storage.delete_containers(&doomed)?;
    stats.containers_deleted += doomed.len() as u64;

    for file in &manifest.files {
        storage.delete_recipe(&file.file, v)?;
        stats.recipes_deleted += 1;
        // If no newer version of this file exists, forget it entirely.
        if similar.latest_version(&file.file) == Some(v) {
            similar.remove(&file.file);
        }
    }
    storage.delete_manifest(v)?;
    if let Some(seq) = seq {
        journal.retire(seq)?;
    }
    Ok(stats)
}

/// Outcome of one orphan-scrub pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrphanScrubStats {
    /// Container/recipe keys examined.
    pub keys_scanned: u64,
    /// Container objects (data or meta) deleted as unreachable.
    pub container_objects_reclaimed: u64,
    /// Recipe and recipe-index objects deleted as unreachable.
    pub recipe_objects_reclaimed: u64,
    /// Total bytes reclaimed.
    pub bytes_reclaimed: u64,
}

impl OrphanScrubStats {
    /// Total objects deleted by the pass.
    pub fn objects_reclaimed(&self) -> u64 {
        self.container_objects_reclaimed + self.recipe_objects_reclaimed
    }
}

/// Reclaim every container/recipe key not reachable from a committed version
/// manifest — the cleanup half of the backup commit protocol.
///
/// A backup job writes containers and recipes first and commits by PUTting
/// the version manifest last; a job that dies before the commit point leaves
/// orphan keys behind. This pass computes the reachable set and deletes the
/// rest:
///
/// * **containers** are reachable if any committed manifest lists them
///   (`new_containers` or `garbage_on_delete`), any committed recipe
///   references them, or — when `global` is given — the global fingerprint
///   index still points a chunk at them (SCC output containers are created
///   by the G-node mid-cycle and reachable through rewritten recipes and the
///   index before any manifest lists them).
/// * **recipes / recipe-indexes** are reachable if their version has a
///   committed manifest.
///
/// Invariants: must run with no backup in flight (the G-node is offline by
/// design, §III-A) and, when a global index exists, it must be passed in.
/// The pass is idempotent — a second run reclaims nothing.
pub fn scrub_orphans(
    storage: &StorageLayer,
    global: Option<&GlobalIndex>,
) -> Result<OrphanScrubStats> {
    let mut live_versions: HashSet<VersionId> = HashSet::new();
    let mut reachable: HashSet<ContainerId> = HashSet::new();
    for v in storage.list_versions() {
        live_versions.insert(v);
        let manifest = storage.get_manifest(v)?;
        reachable.extend(manifest.new_containers.iter().copied());
        reachable.extend(manifest.garbage_on_delete.iter().copied());
        for file in &manifest.files {
            let recipe = storage.get_recipe(&file.file, v)?;
            reachable.extend(recipe.records().map(|r| r.container_id));
        }
    }
    if let Some(global) = global {
        reachable.extend(global.referenced_containers()?);
    }

    let oss = storage.oss();
    let mut stats = OrphanScrubStats::default();
    // Reclaim a doomed key set in two batched sweeps: size everything (the
    // reclaimed-bytes figure), then delete everything. Errors propagate —
    // an under-counted scrub would misreport what the protocol leaked.
    let reclaim = |doomed: &[String], stats: &mut OrphanScrubStats| -> Result<()> {
        for result in oss.len_many(doomed) {
            stats.bytes_reclaimed += result?.unwrap_or(0);
        }
        for result in oss.delete_many(doomed) {
            result?;
        }
        Ok(())
    };
    // List raw container keys rather than metas: a job killed between the
    // data PUT and the meta PUT leaves a data object with no meta.
    let mut doomed: Vec<String> = Vec::new();
    for key in oss.list(layout::CONTAINER_PREFIX) {
        stats.keys_scanned += 1;
        let Some(id) = layout::parse_container_key(&key) else {
            continue; // unknown layout: never delete what we can't attribute
        };
        if !reachable.contains(&id) {
            doomed.push(key);
        }
    }
    reclaim(&doomed, &mut stats)?;
    stats.container_objects_reclaimed += doomed.len() as u64;
    let mut doomed: Vec<String> = Vec::new();
    for prefix in [layout::RECIPE_PREFIX, layout::RECIPE_INDEX_PREFIX] {
        for key in oss.list(prefix) {
            stats.keys_scanned += 1;
            let Some(v) = layout::parse_recipe_version(&key) else {
                continue;
            };
            if !live_versions.contains(&v) {
                doomed.push(key);
            }
        }
    }
    reclaim(&doomed, &mut stats)?;
    stats.recipe_objects_reclaimed += doomed.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::backup::BackupPipeline;
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::rocks::RocksConfig;
    use slim_oss::Oss;
    use slim_types::{FileId, SlimConfig, VersionManifest};
    use std::sync::Arc;

    struct Env {
        storage: StorageLayer,
        similar: SimilarFileIndex,
        global: GlobalIndex,
        journal: Journal,
        config: SlimConfig,
    }

    fn setup() -> Env {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let global =
            GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::small_for_tests(), 4096)
                .unwrap();
        Env {
            storage,
            similar: SimilarFileIndex::new(),
            global,
            journal: Journal::open(Arc::new(oss)),
            config: SlimConfig::small_for_tests(),
        }
    }

    fn collect(env: &Env, v: u64) -> Result<CollectStats> {
        let out = collect_version(
            &env.storage,
            &env.global,
            &env.similar,
            &env.journal,
            VersionId(v),
        );
        if out.is_ok() {
            assert!(
                env.journal.is_empty(),
                "a completed sweep must retire its intents"
            );
        }
        out
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    impl Env {
        fn backup_version(&self, version: u64, files: &[(&FileId, &[u8])]) {
            let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.config));
            let pipeline =
                BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.config);
            let mut manifest = VersionManifest::new(VersionId(version));
            for (file, bytes) in files {
                let out = pipeline
                    .backup_file(file, VersionId(version), bytes)
                    .unwrap();
                manifest.files.push(out.info);
                manifest.new_containers.extend(out.new_containers);
            }
            self.storage.put_manifest(&manifest).unwrap();
        }

        fn restore(&self, file: &FileId, version: u64) -> Vec<u8> {
            RestoreEngine::new(&self.storage, Some(&self.global))
                .restore_file(
                    file,
                    VersionId(version),
                    &RestoreOptions::from_config(&self.config),
                )
                .unwrap()
                .0
        }
    }

    #[test]
    fn mark_identifies_dropped_containers() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(1, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        // v1 rewrites the file completely: v0's containers become invisible.
        let v1 = data(2, 40_000);
        env.backup_version(1, &[(&file, &v1)]);
        let marked = mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        assert!(marked > 0, "fully-rewritten file must orphan containers");
        let manifest = env.storage.get_manifest(VersionId(0)).unwrap();
        assert_eq!(manifest.garbage_on_delete.len() as u64, marked);
        // Marking again adds nothing (idempotent).
        let again = mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn mark_keeps_shared_containers() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(3, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        env.backup_version(1, &[(&file, &v0)]); // identical: everything shared
        let marked = mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        assert_eq!(marked, 0, "shared containers must not be marked");
    }

    #[test]
    fn sweep_reclaims_space_and_preserves_survivors() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(4, 40_000);
        let v1 = data(5, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        env.backup_version(1, &[(&file, &v1)]);
        mark_unreferenced(&env.storage, VersionId(0), VersionId(1)).unwrap();
        let before = env.storage.container_store_bytes().unwrap();
        let stats = collect(&env, 0).unwrap();
        assert!(stats.containers_deleted > 0);
        assert!(stats.recipes_deleted >= 1);
        let after = env.storage.container_store_bytes().unwrap();
        assert!(
            after < before,
            "sweep must reclaim bytes: {before} -> {after}"
        );
        // v1 still restores; v0 is gone.
        assert_eq!(env.restore(&file, 1), v1);
        assert!(env.storage.get_recipe(&file, VersionId(0)).is_err());
        assert!(matches!(
            env.storage.get_manifest(VersionId(0)),
            Err(SlimError::VersionNotFound(0))
        ));
    }

    #[test]
    fn fifo_order_enforced() {
        let env = setup();
        let file = FileId::new("f");
        env.backup_version(0, &[(&file, &data(6, 10_000))]);
        env.backup_version(1, &[(&file, &data(7, 10_000))]);
        let err = collect(&env, 1).unwrap_err();
        assert!(matches!(err, SlimError::InvalidConfig(_)));
        assert!(matches!(collect(&env, 9), Err(SlimError::InvalidConfig(_))));
    }

    #[test]
    fn last_version_of_file_clears_similar_index() {
        let env = setup();
        let file = FileId::new("only");
        env.backup_version(0, &[(&file, &data(8, 20_000))]);
        assert_eq!(env.similar.latest_version(&file), Some(VersionId(0)));
        collect(&env, 0).unwrap();
        assert_eq!(env.similar.latest_version(&file), None);
    }

    #[test]
    fn collect_missing_version_errors() {
        let env = setup();
        assert!(matches!(
            collect(&env, 0),
            Err(SlimError::VersionNotFound(0))
        ));
    }

    #[test]
    fn scrub_preserves_committed_state() {
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(20, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        let stats = scrub_orphans(&env.storage, Some(&env.global)).unwrap();
        assert_eq!(stats.objects_reclaimed(), 0, "{stats:?}");
        assert_eq!(stats.bytes_reclaimed, 0);
        assert!(stats.keys_scanned > 0);
        assert_eq!(env.restore(&file, 0), v0);
    }

    #[test]
    fn scrub_reclaims_uncommitted_keys() {
        use bytes::Bytes;
        let env = setup();
        let file = FileId::new("f");
        let v0 = data(21, 40_000);
        env.backup_version(0, &[(&file, &v0)]);
        let oss = env.storage.oss();
        // Simulate a job killed mid-backup of version 1: a dangling container
        // data object (no meta — died between the two PUTs), a full dangling
        // container, and recipe/recipe-index objects with no manifest.
        oss.put("containers/000000000090/data", Bytes::from(vec![1u8; 64]))
            .unwrap();
        oss.put("containers/000000000091/data", Bytes::from(vec![2u8; 64]))
            .unwrap();
        oss.put("containers/000000000091/meta", Bytes::from(vec![3u8; 16]))
            .unwrap();
        oss.put("recipes/f/00000001", Bytes::from(vec![4u8; 32]))
            .unwrap();
        oss.put("recipe-index/f/00000001", Bytes::from(vec![5u8; 8]))
            .unwrap();
        let stats = scrub_orphans(&env.storage, Some(&env.global)).unwrap();
        assert_eq!(stats.container_objects_reclaimed, 3);
        assert_eq!(stats.recipe_objects_reclaimed, 2);
        assert_eq!(stats.bytes_reclaimed, 64 + 64 + 16 + 32 + 8);
        assert!(!oss.exists("containers/000000000090/data").unwrap());
        assert!(!oss.exists("recipes/f/00000001").unwrap());
        // Committed state untouched; a second pass converges to zero.
        assert_eq!(env.restore(&file, 0), v0);
        let again = scrub_orphans(&env.storage, Some(&env.global)).unwrap();
        assert_eq!(again.objects_reclaimed(), 0);
    }
}
