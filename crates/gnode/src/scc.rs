//! Sparse container compaction (§V-B).
//!
//! After a backup version completes, containers whose utilization *for that
//! version* fell below the threshold (default 30 %) are compacted: the few
//! chunks the version still uses move into fresh, densely packed containers,
//! and the version's recipes are rewritten to point at them. Restores of the
//! current version then stop paying the read amplification of sparse
//! containers — the benefit applies immediately, not at the next backup like
//! HAR's rewriting.
//!
//! The moved chunks are marked deleted in their sparse source containers
//! (reclaiming old-version storage over time, Fig 9(b)), and the compacted
//! sparse containers are associated as garbage with the current version for
//! the Sweep phase of version collection (§VI-B).
//!
//! Crash safety: the compaction containers are written first, then a
//! [`crate::journal`] `RepointIndex` intent records every move, and only
//! then are the sparse copies marked deleted and the global index flipped.
//! A crash at any point either leaves unreferenced compaction containers
//! (reclaimed by the orphan scrub) or an intent that recovery replays, so a
//! durable deletion mark can never outlive the index flip to the new home.

use std::collections::{HashMap, HashSet};

use slim_index::GlobalIndex;
use slim_lnode::StorageLayer;
use slim_types::{
    ContainerBuilder, ContainerId, FileId, Fingerprint, Recipe, RecipeIndex, Result, SlimConfig,
    VersionId,
};

use crate::journal::{Intent, Journal};
use crate::meta_cache::MetaCache;
use crate::reverse_dedup::{maybe_rewrite, RelocationMap, ReverseDedupStats};

/// Outcome of one SCC pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SccStats {
    /// Containers identified as sparse for this version.
    pub sparse_containers: u64,
    /// Chunks moved into compaction containers.
    pub chunks_moved: u64,
    /// Bytes moved.
    pub bytes_moved: u64,
    /// Fresh containers created by compaction.
    pub containers_created: u64,
    /// Files whose recipes were rewritten.
    pub recipes_rewritten: u64,
}

/// Run sparse container compaction for `version`.
///
/// `files` are the files backed up in this version; `new_containers` the
/// containers the backup itself created (never considered sparse — they *are*
/// the current locality). Returns the stats and the list of compacted sparse
/// containers to associate with this version as garbage-on-delete.
#[allow(clippy::too_many_arguments)]
pub fn compact_sparse_containers(
    storage: &StorageLayer,
    global: &GlobalIndex,
    meta_cache: &mut MetaCache,
    journal: &Journal,
    config: &SlimConfig,
    version: VersionId,
    files: &[FileId],
    new_containers: &[ContainerId],
    reverse_relocations: RelocationMap,
    rd_stats: &mut ReverseDedupStats,
) -> Result<(SccStats, Vec<ContainerId>)> {
    let mut stats = SccStats::default();
    let new_set: HashSet<ContainerId> = new_containers.iter().copied().collect();

    // Pass 1: utilization of every old container referenced by this version.
    let mut refs: HashMap<ContainerId, HashSet<Fingerprint>> = HashMap::new();
    let mut recipes: Vec<(FileId, Recipe)> = Vec::with_capacity(files.len());
    for file in files {
        let recipe = storage.get_recipe(file, version)?;
        for rec in recipe.records() {
            if !new_set.contains(&rec.container_id) {
                refs.entry(rec.container_id).or_default().insert(rec.fp);
            }
        }
        recipes.push((file.clone(), recipe));
    }

    // Records already relocated by reverse dedup also need their recipe
    // entries repointed (the current version must never pay a relocation
    // lookup); seed the rewrite map with them.
    let mut sparse: HashSet<ContainerId> = HashSet::new();
    for (&container, used) in &refs {
        if !storage.container_exists(container)? {
            continue; // already collected
        }
        let meta = meta_cache.get(container)?;
        let total = meta.total_chunks();
        if total == 0 {
            continue;
        }
        let utilization = used.len() as f64 / total as f64;
        if utilization < config.sparse_utilization_threshold {
            sparse.insert(container);
        }
    }
    stats.sparse_containers = sparse.len() as u64;

    // Pass 2: move the useful chunks of sparse containers into fresh
    // containers, remembering each chunk's new home. Deletion marks and
    // index flips are deferred to after the intent record below, so no mark
    // can become durable (e.g. via cache eviction) before the journal
    // promises the repoint.
    let mut relocated: HashMap<Fingerprint, ContainerId> = reverse_relocations;
    let mut moved: Vec<(ContainerId, Fingerprint, ContainerId)> = Vec::new();
    let mut builder: Option<ContainerBuilder> = None;
    let seal = |storage: &StorageLayer,
                builder: &mut Option<ContainerBuilder>,
                stats: &mut SccStats|
     -> Result<()> {
        if let Some(b) = builder.take() {
            if !b.is_empty() {
                let (data, meta) = b.seal();
                storage.put_container(data, &meta)?;
                stats.containers_created += 1;
            }
        }
        Ok(())
    };
    let mut sparse_sorted: Vec<ContainerId> = sparse.iter().copied().collect();
    sparse_sorted.sort();
    for &container in &sparse_sorted {
        let data = storage.get_container_data(container)?;
        let used = &refs[&container];
        let entries: Vec<_> = meta_cache
            .get(container)?
            .entries
            .iter()
            .filter(|e| !e.deleted && used.contains(&e.fp))
            .copied()
            .collect();
        for entry in entries {
            if relocated.contains_key(&entry.fp) {
                continue;
            }
            // Validated extraction + decompression; the compacted copy is
            // recompressed under the current knob. Capacity accounting (and
            // so compaction container boundaries and `bytes_moved`) is in
            // raw bytes, invariant under compression.
            let payload = entry.payload_from(&data)?;
            if builder
                .as_ref()
                .is_some_and(|b| b.would_overflow(payload.len()))
            {
                seal(storage, &mut builder, &mut stats)?;
            }
            let b = match &mut builder {
                Some(b) => b,
                None => {
                    let id = storage.allocate_container_id();
                    builder.insert(
                        ContainerBuilder::new(id, config.container_capacity)
                            .with_compression(config.compression),
                    )
                }
            };
            b.push(entry.fp, &payload);
            relocated.insert(entry.fp, b.id());
            moved.push((container, entry.fp, b.id()));
            stats.chunks_moved += 1;
            stats.bytes_moved += payload.len() as u64;
        }
    }
    seal(storage, &mut builder, &mut stats)?;

    // Every compaction container is durable; promise the index flips, then
    // delete the sparse copies and repoint the global index.
    let repoint_seq = if moved.is_empty() {
        None
    } else {
        Some(journal.record(&Intent::RepointIndex {
            entries: moved.iter().map(|&(_, fp, dest)| (fp, dest)).collect(),
        })?)
    };
    for &(source, fp, dest) in &moved {
        meta_cache.update(source, |m| m.mark_deleted(&fp))?;
        global.relocate(&fp, dest)?;
    }

    // Pass 3: rewrite the current version's recipes to the new layout.
    for (file, mut recipe) in recipes {
        let mut changed = false;
        for seg in &mut recipe.segments {
            for rec in &mut seg.records {
                if let Some(&new_home) = relocated.get(&rec.fp) {
                    if rec.container_id != new_home {
                        rec.container_id = new_home;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            continue;
        }
        let (buf, spans) = recipe.encode();
        let index = RecipeIndex::build(&recipe, &spans, config.sample_rate);
        storage
            .oss()
            .put(&slim_types::layout::recipe(&file, version), buf)?;
        storage.oss().put(
            &slim_types::layout::recipe_index(&file, version),
            index.encode(),
        )?;
        stats.recipes_rewritten += 1;
    }

    // Physically shrink the sparse containers we touched (each call is its
    // own journaled two-phase rewrite).
    for &container in &sparse_sorted {
        maybe_rewrite(
            storage, global, meta_cache, journal, config, container, rd_stats,
        )?;
    }
    meta_cache.flush()?;
    global.flush()?;
    if let Some(seq) = repoint_seq {
        journal.retire(seq)?;
    }
    Ok((stats, sparse_sorted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_index::SimilarFileIndex;
    use slim_lnode::backup::BackupPipeline;
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::rocks::RocksConfig;
    use slim_oss::Oss;
    use std::sync::Arc;

    struct Env {
        storage: StorageLayer,
        similar: SimilarFileIndex,
        global: GlobalIndex,
        journal: Journal,
        config: SlimConfig,
    }

    fn setup() -> Env {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let global =
            GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::small_for_tests(), 4096)
                .unwrap();
        Env {
            storage,
            similar: SimilarFileIndex::new(),
            global,
            journal: Journal::open(Arc::new(oss)),
            config: SlimConfig::small_for_tests(),
        }
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    impl Env {
        fn backup(&self, file: &FileId, version: u64, bytes: &[u8]) -> Vec<ContainerId> {
            let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.config));
            BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.config)
                .backup_file(file, VersionId(version), bytes)
                .unwrap()
                .new_containers
        }

        fn restore(&self, file: &FileId, version: u64) -> Vec<u8> {
            RestoreEngine::new(&self.storage, Some(&self.global))
                .restore_file(
                    file,
                    VersionId(version),
                    &RestoreOptions::from_config(&self.config),
                )
                .unwrap()
                .0
        }

        fn scc(
            &self,
            version: u64,
            files: &[FileId],
            new_containers: &[ContainerId],
        ) -> (SccStats, Vec<ContainerId>) {
            let mut cache = MetaCache::new(self.storage.clone(), 64);
            let mut rd = ReverseDedupStats::default();
            let out = compact_sparse_containers(
                &self.storage,
                &self.global,
                &mut cache,
                &self.journal,
                &self.config,
                VersionId(version),
                files,
                new_containers,
                RelocationMap::new(),
                &mut rd,
            )
            .unwrap();
            assert!(
                self.journal.is_empty(),
                "a completed SCC pass must retire all of its intents"
            );
            out
        }
    }

    /// Build a history where a later version uses only a sliver of the
    /// containers created by version 0 — those become sparse.
    fn build_sparse_history(env: &Env, file: &FileId) -> (Vec<Vec<u8>>, Vec<Vec<ContainerId>>) {
        let mut inputs = Vec::new();
        let mut containers = Vec::new();
        let mut cur = data(1, 64_000);
        for v in 0..6u64 {
            let ids = env.backup(file, v, &cur);
            inputs.push(cur.clone());
            containers.push(ids);
            // Replace most of the file each version, keeping a small slice.
            let keep = cur[..8_000].to_vec();
            cur = data(100 + v, 56_000);
            cur.splice(0..0, keep);
            cur.truncate(64_000);
        }
        (inputs, containers)
    }

    #[test]
    fn scc_moves_chunks_and_keeps_restores_correct() {
        let env = setup();
        let file = FileId::new("f");
        let (inputs, containers) = build_sparse_history(&env, &file);
        let last = inputs.len() - 1;
        let (stats, garbage) = env.scc(last as u64, &[file.clone()], &containers[last]);
        assert!(
            stats.sparse_containers > 0,
            "history must create sparse containers"
        );
        assert!(stats.chunks_moved > 0);
        assert!(stats.recipes_rewritten >= 1);
        assert_eq!(garbage.len() as u64, stats.sparse_containers);
        // The compacted version restores byte-identically...
        assert_eq!(env.restore(&file, last as u64), inputs[last]);
        // ...and so do all older versions (moved chunks resolve through the
        // global index).
        for (v, expected) in inputs.iter().enumerate() {
            assert_eq!(&env.restore(&file, v as u64), expected, "version {v}");
        }
    }

    #[test]
    fn scc_reduces_containers_read_for_current_version() {
        let env = setup();
        let file = FileId::new("f");
        let (inputs, containers) = build_sparse_history(&env, &file);
        let last = inputs.len() - 1;
        let opts = RestoreOptions::from_config(&env.config).without_prefetch();
        let engine_reads = |env: &Env| {
            RestoreEngine::new(&env.storage, Some(&env.global))
                .restore_file(&file, VersionId(last as u64), &opts)
                .unwrap()
                .1
                .containers_read
        };
        let before = engine_reads(&env);
        env.scc(last as u64, &[file.clone()], &containers[last]);
        let after = engine_reads(&env);
        assert!(
            after < before,
            "SCC should reduce container reads: before={before} after={after}"
        );
    }

    #[test]
    fn scc_noop_when_nothing_sparse() {
        let env = setup();
        let file = FileId::new("f");
        let input = data(42, 30_000);
        let ids = env.backup(&file, 0, &input);
        let (stats, garbage) = env.scc(0, &[file.clone()], &ids);
        assert_eq!(stats.sparse_containers, 0);
        assert!(garbage.is_empty());
        assert_eq!(env.restore(&file, 0), input);
    }

    #[test]
    fn moved_chunks_update_global_index() {
        let env = setup();
        let file = FileId::new("f");
        let (inputs, containers) = build_sparse_history(&env, &file);
        let last = inputs.len() - 1;
        env.scc(last as u64, &[file.clone()], &containers[last]);
        // Every record of the rewritten recipe resolves through its stated
        // container (no dangling pointers).
        let recipe = env
            .storage
            .get_recipe(&file, VersionId(last as u64))
            .unwrap();
        for rec in recipe.records() {
            let meta = env.storage.get_container_meta(rec.container_id).unwrap();
            assert!(
                meta.find_live(&rec.fp).is_some(),
                "record {} points at {} which lacks a live copy",
                rec.fp.short_hex(),
                rec.container_id
            );
        }
    }
}
