//! Dedup-aware redundancy policy and the offline repair sweep.
//!
//! The OSS-side half of the redundancy plane ([`slim_oss::RedundantStore`])
//! only *consumes* protection copies; this module is the half that decides
//! and writes them. Policy is dedup-aware, following FASTEN's observation
//! that deduplication concentrates risk: the containers worth the cost of a
//! full replica are exactly those holding many authoritative chunk copies
//! (live global-index entries), because every version that deduplicated
//! against them depends on that one object. Containers below the threshold
//! get cheaper XOR parity-group protection; container *metadata* objects are
//! always replicated — they are tiny, mutate in place (deletion marks), and
//! parity over mutable members would go stale.
//!
//! The re-tier pass runs at the end of every maintenance cycle, after
//! reverse dedup / SCC have settled the cycle's rewrites:
//!
//! 1. compute desired tiers from [`slim_index::GlobalIndex::reference_counts`];
//! 2. keep every still-valid parity group, and keep any group or replica
//!    whose member is currently damaged (it is a repair source);
//! 3. seal new parity groups over uncovered members (parity block first,
//!    CRC-sealed manifest last — the manifest PUT is the commit point);
//! 4. write missing replicas and refresh stale metadata replicas;
//! 5. journal an idempotent [`Intent::DropObjects`] for every obsolete
//!    protection object, then delete — a crash between record and delete
//!    rolls forward on recovery.
//!
//! Additions are idempotent byte-identical PUTs and removals are journaled,
//! so a kill at any step leaves a plane the next cycle converges from.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use slim_index::GlobalIndex;
use slim_lnode::StorageLayer;
use slim_oss::{reconstruct_object, ObjectStore};
use slim_types::redundancy::{parity_of, GroupMember};
use slim_types::{crc, layout, ContainerId, ParityGroup, Result, SlimConfig, SlimError};

use crate::journal::{Intent, Journal};

/// Outcome of one re-tier pass over the redundancy plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedundancyStats {
    /// Container data objects in the replica tier after the pass.
    pub replica_tier: u64,
    /// Container data objects covered by a parity group after the pass.
    pub parity_tier: u64,
    /// Replica objects written (new replicas + refreshed metadata).
    pub replicas_written: u64,
    /// Parity groups sealed by this pass.
    pub parity_groups_sealed: u64,
    /// Obsolete redundancy objects dropped (journaled).
    pub objects_dropped: u64,
}

/// Outcome of a repair sweep over quarantined containers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Containers whose primaries needed and received reconstruction.
    pub containers_repaired: u64,
    /// Containers with a damaged primary and no usable reconstruction
    /// source — still quarantined, honestly lost.
    pub containers_unrepairable: u64,
    /// Primary objects rewritten from a reconstruction.
    pub objects_rewritten: u64,
    /// Global-index entries re-pointed at revived containers.
    pub index_entries_restored: u64,
    /// Quarantined objects whose primary is whole again (eligible for
    /// `scrub --purge`).
    pub quarantine_released: u64,
}

/// Outcome of a quarantine purge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// Quarantined objects deleted.
    pub objects_purged: u64,
    /// Quarantined objects kept (primary still damaged and purge not
    /// forced).
    pub objects_kept: u64,
}

/// Whether `key`'s primary currently holds CRC-intact bytes.
fn primary_intact(oss: &dyn ObjectStore, key: &str) -> Result<bool> {
    match oss.get_raw(key) {
        Ok(buf) => Ok(crc::verified_payload_len(&buf, "primary object").is_ok()),
        Err(SlimError::ObjectNotFound(_)) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Whether `key` is damaged in a way the redundancy plane may still have to
/// repair: present-but-corrupt, or missing with a quarantined copy parked.
/// (Missing with no quarantine copy is legitimate deletion.)
fn primary_damaged(oss: &dyn ObjectStore, key: &str) -> Result<bool> {
    match oss.get_raw(key) {
        Ok(buf) => Ok(crc::verified_payload_len(&buf, "primary object").is_err()),
        Err(SlimError::ObjectNotFound(_)) => oss.exists(&layout::quarantine_key(key)),
        Err(e) => Err(e),
    }
}

/// Re-tier the redundancy plane to match the current dedup state (see the
/// module docs for the pass structure).
pub fn update_redundancy(
    storage: &StorageLayer,
    global: &GlobalIndex,
    journal: &Journal,
    config: &SlimConfig,
) -> Result<RedundancyStats> {
    let oss = storage.oss();
    let mut stats = RedundancyStats::default();

    let mut ids = storage.list_containers();
    ids.sort();
    let counts = global.reference_counts()?;

    // Desired tiers. Metadata objects of every live container are always
    // replicated; data objects split by reference count.
    let mut desired_replicas: BTreeSet<String> =
        ids.iter().map(|&id| layout::container_meta(id)).collect();
    let mut parity_keys: BTreeSet<String> = BTreeSet::new();
    for &id in &ids {
        let refs = counts.get(&id).copied().unwrap_or(0);
        if refs >= config.redundancy_replica_refs {
            desired_replicas.insert(layout::container_data(id));
        } else {
            parity_keys.insert(layout::container_data(id));
        }
    }

    let mut drop_keys: Vec<String> = Vec::new();

    // Existing parity groups: keep the still-valid and the still-needed.
    let mut covered: HashSet<String> = HashSet::new();
    let mut next_gid = 0u64;
    for gkey in oss.list(layout::PARITY_GROUP_PREFIX) {
        let Some(gid) = layout::parse_parity_group_key(&gkey) else {
            continue;
        };
        next_gid = next_gid.max(gid + 1);
        let group = match oss.get_raw(&gkey).map(|buf| ParityGroup::decode(&buf)) {
            Ok(Ok(group)) => group,
            // A corrupt manifest is useless as a repair source: drop it and
            // its parity block.
            Ok(Err(_)) => {
                drop_keys.push(gkey);
                drop_keys.push(layout::parity_data(gid));
                continue;
            }
            Err(e) => return Err(e),
        };
        let valid = group
            .members
            .iter()
            .all(|m| parity_keys.contains(&m.key) && !covered.contains(&m.key));
        let mut keep = valid;
        if !keep {
            // Membership is obsolete, but the group must survive while any
            // member is damaged — it may be the only reconstruction source.
            for m in &group.members {
                if primary_damaged(oss.as_ref(), &m.key)? {
                    keep = true;
                    break;
                }
            }
        }
        if keep {
            covered.extend(group.members.iter().map(|m| m.key.clone()));
        } else {
            drop_keys.push(gkey);
            drop_keys.push(layout::parity_data(gid));
        }
    }

    // Seal new groups over uncovered parity-tier members. Parity block
    // first, manifest last: an unreferenced parity block is invisible, so
    // the manifest PUT is the commit point.
    let uncovered: Vec<&String> = parity_keys
        .iter()
        .filter(|k| !covered.contains(*k))
        .collect();
    for chunk in uncovered.chunks(config.parity_group_size.max(1)) {
        let mut members: Vec<(String, bytes::Bytes)> = Vec::with_capacity(chunk.len());
        for key in chunk {
            // Never seal damage into a group; a skipped member is grouped
            // by a later cycle, after repair.
            match oss.get_raw(key) {
                Ok(buf) if crc::verified_payload_len(&buf, "group member").is_ok() => {
                    members.push(((*key).clone(), buf));
                }
                Ok(_) | Err(SlimError::ObjectNotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        if members.is_empty() {
            continue;
        }
        let gid = next_gid;
        next_gid += 1;
        let parity = parity_of(members.iter().map(|(_, b)| b.as_ref()));
        oss.put(&layout::parity_data(gid), crc::seal(&parity))?;
        let manifest = ParityGroup {
            id: gid,
            members: members
                .iter()
                .map(|(key, buf)| GroupMember {
                    key: key.clone(),
                    len: buf.len() as u64,
                })
                .collect(),
        };
        oss.put(&layout::parity_group_manifest(gid), manifest.encode())?;
        covered.extend(members.into_iter().map(|(key, _)| key));
        stats.parity_groups_sealed += 1;
    }

    // Replicas: data replicas are immutable (write when absent); metadata
    // replicas refresh whenever the primary's bytes moved on (deletion
    // marks land in place).
    let existing_replicas: BTreeSet<String> =
        oss.list(layout::REPLICA_PREFIX).into_iter().collect();
    for original in &desired_replicas {
        let rkey = layout::replica_key(original);
        let primary = match oss.get_raw(original) {
            Ok(buf) if crc::verified_payload_len(&buf, "replica source").is_ok() => buf,
            // Never replicate damage; the repair sweep goes first.
            Ok(_) | Err(SlimError::ObjectNotFound(_)) => continue,
            Err(e) => return Err(e),
        };
        let fresh = if existing_replicas.contains(&rkey) {
            match oss.get_raw(&rkey) {
                Ok(existing) => existing == primary,
                Err(SlimError::ObjectNotFound(_)) => false,
                Err(e) => return Err(e),
            }
        } else {
            false
        };
        if !fresh {
            oss.put(&rkey, primary)?;
            stats.replicas_written += 1;
        }
    }

    // Obsolete replicas: dropped only once their primary is whole again (or
    // legitimately gone) — a demoted-but-damaged container keeps its
    // replica as the repair source.
    for rkey in &existing_replicas {
        let Some(original) = layout::replica_original(rkey) else {
            continue;
        };
        if desired_replicas.contains(original) {
            continue;
        }
        if !primary_damaged(oss.as_ref(), original)? {
            drop_keys.push(rkey.clone());
        }
    }

    // Journaled two-phase drop: record the idempotent intent, delete, then
    // retire. A crash after the record rolls the deletions forward.
    if !drop_keys.is_empty() {
        stats.objects_dropped = drop_keys.len() as u64;
        let seq = journal.record(&Intent::DropObjects {
            keys: drop_keys.clone(),
        })?;
        for res in oss.delete_many(&drop_keys) {
            res?;
        }
        journal.retire(seq)?;
    }

    stats.replica_tier = desired_replicas
        .iter()
        .filter(|k| k.ends_with("/data"))
        .count() as u64;
    stats.parity_tier = parity_keys.iter().filter(|k| covered.contains(*k)).count() as u64;
    Ok(stats)
}

/// Distinct containers with objects parked under the quarantine prefix.
fn quarantined_containers(oss: &dyn ObjectStore) -> Vec<ContainerId> {
    let mut out: BTreeSet<ContainerId> = BTreeSet::new();
    for key in oss.list(layout::QUARANTINE_PREFIX) {
        if let Some(original) = key.strip_prefix(layout::QUARANTINE_PREFIX) {
            if let Some(id) = layout::parse_container_key(original) {
                out.insert(id);
            }
        }
    }
    out.into_iter().collect()
}

/// Reconstruct every repairable quarantined container and re-point the
/// global index at the revived copies. Quarantined copies are *not*
/// deleted — that is `purge_quarantine`'s job, gated on the primary being
/// whole.
pub fn repair_quarantined(storage: &StorageLayer, global: &GlobalIndex) -> Result<RepairReport> {
    let oss = storage.oss();
    let mut report = RepairReport::default();
    for id in quarantined_containers(oss.as_ref()) {
        // Gather first, commit second: a container whose metadata is
        // reconstructible but whose data is lost must stay fully
        // quarantined, not be half-restored.
        let mut pending: Vec<(String, bytes::Bytes)> = Vec::new();
        let mut whole = true;
        for key in [layout::container_data(id), layout::container_meta(id)] {
            if primary_intact(oss.as_ref(), &key)? {
                continue;
            }
            match reconstruct_object(oss.as_ref(), &key)? {
                Some((bytes, _)) => pending.push((key, bytes)),
                None => whole = false,
            }
        }
        if !whole {
            report.containers_unrepairable += 1;
            continue;
        }
        let needed_repair = !pending.is_empty();
        for (key, bytes) in pending {
            // Idempotent byte-identical rewrite: a kill between the two
            // object rewrites re-runs cleanly.
            oss.put(&key, bytes)?;
            report.objects_rewritten += 1;
        }
        // Re-point the index: entries for this container's live chunks were
        // removed at quarantine time; restore any that no newer container
        // claimed meanwhile (insert-if-absent keeps the reverse-dedup
        // "newest copy wins" invariant).
        let meta = storage.get_container_meta(id)?;
        for entry in meta.entries.iter().filter(|e| !e.deleted) {
            if global.get(&entry.fp)?.is_none() {
                global.insert(&entry.fp, id)?;
                report.index_entries_restored += 1;
            }
        }
        if needed_repair {
            report.containers_repaired += 1;
        }
    }
    global.flush()?;

    // Quarantined objects whose primary is whole again are released for
    // purging.
    for key in oss.list(layout::QUARANTINE_PREFIX) {
        let Some(original) = key.strip_prefix(layout::QUARANTINE_PREFIX) else {
            continue;
        };
        if layout::parse_container_key(original).is_some()
            && primary_intact(oss.as_ref(), original)?
        {
            report.quarantine_released += 1;
        }
    }
    Ok(report)
}

/// Split the quarantined containers into `(repairable, lost)` using
/// redundancy-plane membership: a container is repairable when every one of
/// its damaged objects has a CRC-verified reconstruction source.
pub fn classify_quarantine(oss: &dyn ObjectStore) -> Result<(u64, u64)> {
    let mut repairable = 0u64;
    let mut lost = 0u64;
    for id in quarantined_containers(oss) {
        let mut ok = true;
        for key in [layout::container_data(id), layout::container_meta(id)] {
            if primary_intact(oss, &key)? {
                continue;
            }
            if reconstruct_object(oss, &key)?.is_none() {
                ok = false;
                break;
            }
        }
        if ok {
            repairable += 1;
        } else {
            lost += 1;
        }
    }
    Ok((repairable, lost))
}

/// Delete quarantined objects. Without `force`, an object is purged only
/// when its primary is whole again (successful repair); `force` discards
/// everything, including honestly-lost forensic copies.
pub fn purge_quarantine(oss: &dyn ObjectStore, force: bool) -> Result<PurgeReport> {
    let mut report = PurgeReport::default();
    for key in oss.list(layout::QUARANTINE_PREFIX) {
        let Some(original) = key.strip_prefix(layout::QUARANTINE_PREFIX) else {
            continue;
        };
        if force || primary_intact(oss, original)? {
            oss.delete(&key)?;
            report.objects_purged += 1;
        } else {
            report.objects_kept += 1;
        }
    }
    Ok(report)
}

/// Redundancy-plane keys protecting containers that no longer exist
/// anywhere (not live, not quarantined) — used by tests to assert the plane
/// does not leak.
pub fn orphaned_redundancy_keys(oss: &dyn ObjectStore) -> Result<Vec<String>> {
    let mut orphans = Vec::new();
    for rkey in oss.list(layout::REPLICA_PREFIX) {
        let Some(original) = layout::replica_original(&rkey) else {
            continue;
        };
        if !oss.exists(original)? && !oss.exists(&layout::quarantine_key(original))? {
            orphans.push(rkey);
        }
    }
    Ok(orphans)
}

/// Per-tier protected-object counts `(replica_data, parity_data)` read back
/// from the plane itself (diagnostics / space accounting).
pub fn protection_summary(oss: &dyn ObjectStore) -> Result<BTreeMap<&'static str, u64>> {
    let mut out = BTreeMap::new();
    out.insert("replicas", oss.list(layout::REPLICA_PREFIX).len() as u64);
    out.insert(
        "parity_groups",
        oss.list(layout::PARITY_GROUP_PREFIX).len() as u64,
    );
    Ok(out)
}
