//! The G-node: the offline space manager (§III-B, §VI).
//!
//! One G-node serves a deployment. After every backup version the computing
//! layer hands it the version's manifest and it runs its cycle:
//!
//! 1. **reverse deduplication** over the version's new containers;
//! 2. **sparse container compaction** for the version's files;
//! 3. **garbage marking** of the previous version (Mark phase of §VI-B).
//!
//! All of it is offline: the online dedup/restore path never waits on the
//! G-node, and the recipes of the latest version are only improved (SCC
//! rewrites them to a denser layout), never invalidated.
//!
//! The maintenance plane is crash-safe: every destructive stage journals an
//! idempotent intent first (see [`crate::journal`]), and [`GNode::recover`]
//! — run on every startup — replays outstanding intents, quarantines
//! corrupted maintenance outputs, and re-derives lost global-index entries
//! from container metadata.

use std::collections::{BTreeMap, HashSet};

use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::StorageLayer;
use slim_telemetry::Scope;
use slim_types::{layout, ContainerId, Result, SlimConfig, SlimError, VersionId};

use crate::collect::{
    collect_version, mark_sparse_garbage, mark_unreferenced, scrub_orphans, CollectStats,
    OrphanScrubStats,
};
use crate::journal::{Intent, Journal};
use crate::meta_cache::MetaCache;
use crate::redundancy::{PurgeReport, RedundancyStats, RepairReport};
use crate::reverse_dedup::{reverse_dedup, ReverseDedupStats};
use crate::scc::{compact_sparse_containers, SccStats};

/// Combined statistics of one G-node cycle.
#[derive(Debug, Clone, Default)]
pub struct GNodeCycleStats {
    /// Reverse-deduplication outcome.
    pub reverse: ReverseDedupStats,
    /// Sparse-container-compaction outcome.
    pub scc: SccStats,
    /// Containers newly marked garbage for the previous version.
    pub marked_garbage: u64,
    /// Quarantine-repair outcome (when redundancy is enabled).
    pub repair: RepairReport,
    /// Redundancy re-tier outcome (when redundancy is enabled).
    pub redundancy: RedundancyStats,
}

impl GNodeCycleStats {
    /// Fold this cycle's counters into a telemetry scope (canonically
    /// `gnode`). Phase *timings* are recorded by the cycle's spans; this
    /// covers the work counters.
    pub fn emit(&self, scope: &Scope) {
        scope.counter("cycles").inc();
        scope
            .counter("chunks_scanned")
            .add(self.reverse.chunks_scanned);
        scope.counter("bloom_skips").add(self.reverse.bloom_skips);
        scope
            .counter("duplicates_removed")
            .add(self.reverse.duplicates_removed);
        scope.counter("bytes_marked").add(self.reverse.bytes_marked);
        scope
            .counter("containers_rewritten")
            .add(self.reverse.containers_rewritten);
        scope
            .counter("containers_deleted")
            .add(self.reverse.containers_deleted);
        scope
            .counter("bytes_reclaimed")
            .add(self.reverse.bytes_reclaimed);
        scope
            .counter("sparse_containers")
            .add(self.scc.sparse_containers);
        scope.counter("chunks_moved").add(self.scc.chunks_moved);
        scope.counter("bytes_moved").add(self.scc.bytes_moved);
        scope
            .counter("containers_created")
            .add(self.scc.containers_created);
        scope
            .counter("recipes_rewritten")
            .add(self.scc.recipes_rewritten);
        scope.counter("marked_garbage").add(self.marked_garbage);
        scope
            .counter("repair.containers_repaired")
            .add(self.repair.containers_repaired);
        scope
            .counter("repair.containers_unrepairable")
            .add(self.repair.containers_unrepairable);
        scope
            .counter("repair.objects_rewritten")
            .add(self.repair.objects_rewritten);
        scope
            .counter("repair.index_entries_restored")
            .add(self.repair.index_entries_restored);
        scope
            .counter("redundancy.replicas_written")
            .add(self.redundancy.replicas_written);
        scope
            .counter("redundancy.parity_groups_sealed")
            .add(self.redundancy.parity_groups_sealed);
        scope
            .counter("redundancy.objects_dropped")
            .add(self.redundancy.objects_dropped);
    }
}

/// What [`GNode::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Outstanding journal intents replayed (then retired).
    pub intents_replayed: u64,
    /// Two-phase rewrites completed forward (new copy intact).
    pub rewrites_rolled_forward: u64,
    /// Two-phase rewrites undone (new copy missing or corrupt).
    pub rewrites_rolled_back: u64,
    /// Journal records that failed their own CRC and were quarantined.
    pub journal_records_quarantined: u64,
    /// Container data/meta objects moved under the quarantine prefix.
    pub objects_quarantined: u64,
    /// Global-index SSTable objects quarantined as corrupt.
    pub index_tables_quarantined: u64,
    /// Unreferenced global-index SSTable objects retired.
    pub index_tables_retired: u64,
    /// Fingerprint entries re-derived from container metadata after an
    /// index run was dropped.
    pub index_entries_rederived: u64,
}

impl RecoveryReport {
    /// True when recovery found nothing to repair.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

/// What [`GNode::verify_checksums`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Containers whose data and metadata objects were CRC-verified.
    pub containers_checked: u64,
    /// Containers that failed verification and were quarantined.
    pub containers_quarantined: u64,
    /// Individual objects moved under the quarantine prefix.
    pub objects_quarantined: u64,
    /// Global-index entries removed because they pointed at quarantined
    /// containers (an honest miss beats a dangling pointer).
    pub index_entries_removed: u64,
}

/// Health of one container's pair of OSS objects.
enum ContainerState {
    /// Both objects present and CRC-clean.
    Intact,
    /// Neither object readable as present (already deleted / never written).
    Missing,
    /// At least one object present but failing its checksum or decode.
    Corrupt,
}

/// The offline space-management node.
pub struct GNode {
    storage: StorageLayer,
    global: GlobalIndex,
    similar: SimilarFileIndex,
    journal: Journal,
    config: SlimConfig,
    meta_cache_capacity: usize,
    telemetry: Option<Scope>,
}

impl GNode {
    /// Deploy the G-node over the shared storage layer and indexes.
    pub fn new(
        storage: StorageLayer,
        global: GlobalIndex,
        similar: SimilarFileIndex,
        config: SlimConfig,
    ) -> Result<Self> {
        config.validate()?;
        let journal = Journal::open(storage.oss().clone());
        Ok(GNode {
            storage,
            global,
            similar,
            journal,
            config,
            meta_cache_capacity: 1024,
            telemetry: None,
        })
    }

    /// Attach a telemetry scope (canonically `gnode`): every cycle stage
    /// emits a span (`cycle`, `reverse_dedup`, `scc`, `mark`, `collect`,
    /// `scrub_orphans`, `vacuum`) and each cycle's work counters are added
    /// to the scope's totals.
    pub fn with_telemetry(mut self, scope: Scope) -> Self {
        self.telemetry = Some(scope);
        self
    }

    /// The global fingerprint index (shared with old-version restores).
    pub fn global_index(&self) -> &GlobalIndex {
        &self.global
    }

    /// Run the full offline cycle for the version that just finished.
    pub fn run_cycle(&self, version: VersionId) -> Result<GNodeCycleStats> {
        let _cycle = self.telemetry.as_ref().map(|s| s.span("cycle"));
        let manifest = self.storage.get_manifest(version)?;
        let mut cache = MetaCache::new(self.storage.clone(), self.meta_cache_capacity);
        let mut stats = GNodeCycleStats::default();

        // 1. Exact dedup over the new containers.
        let stage = self.telemetry.as_ref().map(|s| s.span("reverse_dedup"));
        let (reverse_stats, relocations) = reverse_dedup(
            &self.storage,
            &self.global,
            &mut cache,
            &self.journal,
            &self.config,
            &manifest.new_containers,
        )?;
        stats.reverse = reverse_stats;
        drop(stage);

        // 2. Compact the containers this version uses sparsely.
        let stage = self.telemetry.as_ref().map(|s| s.span("scc"));
        let files: Vec<_> = manifest.files.iter().map(|f| f.file.clone()).collect();
        let (scc_stats, sparse_garbage) = compact_sparse_containers(
            &self.storage,
            &self.global,
            &mut cache,
            &self.journal,
            &self.config,
            version,
            &files,
            &manifest.new_containers,
            relocations,
            &mut stats.reverse,
        )?;
        stats.scc = scc_stats;
        mark_sparse_garbage(&self.storage, version, &sparse_garbage)?;
        drop(stage);

        // 3. Mark phase for the previous version, if it still exists.
        let stage = self.telemetry.as_ref().map(|s| s.span("mark"));
        if version.0 > 0 {
            let prev = VersionId(version.0 - 1);
            if self.storage.get_manifest(prev).is_ok() {
                stats.marked_garbage = mark_unreferenced(&self.storage, prev, version)?;
            }
        }
        drop(stage);

        // 4. Redundancy plane: reconstruct what the plane can repair, then
        // re-tier protection to this cycle's dedup state. Repair runs first
        // so a container the cycle damaged detection-wise can be grouped or
        // replicated again; re-tier runs last so replicas and parity reflect
        // the containers' final post-rewrite bytes.
        if self.config.redundancy {
            let stage = self.telemetry.as_ref().map(|s| s.span("repair"));
            stats.repair = crate::redundancy::repair_quarantined(&self.storage, &self.global)?;
            drop(stage);
            let stage = self.telemetry.as_ref().map(|s| s.span("redundancy"));
            stats.redundancy = crate::redundancy::update_redundancy(
                &self.storage,
                &self.global,
                &self.journal,
                &self.config,
            )?;
            drop(stage);
        }

        if let Some(scope) = &self.telemetry {
            stats.emit(scope);
        }
        Ok(stats)
    }

    /// Sweep the oldest version (retention-window deletion).
    pub fn collect_version(&self, version: VersionId) -> Result<CollectStats> {
        let _stage = self.telemetry.as_ref().map(|s| s.span("collect"));
        let stats = collect_version(
            &self.storage,
            &self.global,
            &self.similar,
            &self.journal,
            version,
        )?;
        if let Some(scope) = &self.telemetry {
            scope
                .counter("collected_containers")
                .add(stats.containers_deleted);
            scope.counter("collected_bytes").add(stats.bytes_reclaimed);
            scope
                .counter("collected_recipes")
                .add(stats.recipes_deleted);
        }
        Ok(stats)
    }

    /// Reclaim container/recipe keys left behind by backup jobs that died
    /// before their commit point (the version-manifest PUT). Safe to run in
    /// any G-node maintenance window — committed versions are untouched and
    /// the pass is idempotent. See [`crate::collect::scrub_orphans`].
    pub fn scrub_orphans(&self) -> Result<OrphanScrubStats> {
        let _stage = self.telemetry.as_ref().map(|s| s.span("scrub_orphans"));
        let stats = scrub_orphans(&self.storage, Some(&self.global))?;
        if let Some(scope) = &self.telemetry {
            scope.counter("scrub_keys_scanned").add(stats.keys_scanned);
            scope
                .counter("scrub_objects_reclaimed")
                .add(stats.objects_reclaimed());
            scope
                .counter("scrub_bytes_reclaimed")
                .add(stats.bytes_reclaimed);
        }
        Ok(stats)
    }

    /// Physically reclaim every byte marked deleted: rewrite any container
    /// holding stale chunks and drop empty ones. Reverse deduplication
    /// defers physical deletion to batch it (§VI-A); vacuum is the batch —
    /// run it when storage cost matters more than offline I/O.
    pub fn vacuum(&self) -> Result<ReverseDedupStats> {
        let _stage = self.telemetry.as_ref().map(|s| s.span("vacuum"));
        let mut cache = MetaCache::new(self.storage.clone(), self.meta_cache_capacity);
        let mut stats = ReverseDedupStats::default();
        let mut zero_threshold = self.config.clone();
        zero_threshold.container_rewrite_threshold = 0.0;
        for id in self.storage.list_containers() {
            if cache.get(id)?.deleted_chunks() == 0 {
                continue;
            }
            crate::reverse_dedup::maybe_rewrite(
                &self.storage,
                &self.global,
                &mut cache,
                &self.journal,
                &zero_threshold,
                id,
                &mut stats,
            )?;
        }
        cache.flush()?;
        Ok(stats)
    }

    /// Replay the maintenance journal and repair corrupted maintenance
    /// state. Run on every startup, before any backup/restore traffic: a
    /// G-node cycle killed at any point leaves intents behind, and this pass
    /// drives the store back to a state from which re-running the cycle
    /// converges.
    ///
    /// Per intent kind:
    /// * `RepointIndex` — re-relocate each fingerprint whose target
    ///   container still holds a live copy (the deletion marks may be
    ///   durable while the index flip was lost with the memtable);
    /// * `RewriteContainer` — roll *forward* when the new container is
    ///   intact (flip index entries, delete the old object), roll *back*
    ///   when it is missing or corrupt (quarantine the remnants, repoint
    ///   entries at the still-whole old container);
    /// * `DropContainers` — re-delete (idempotent).
    ///
    /// Afterwards the global index's SSTables are CRC-verified; corrupt runs
    /// are quarantined and their lost entries re-derived from container
    /// metadata (ascending id order, so the newest live copy wins — the
    /// reverse-dedup invariant).
    pub fn recover(&self) -> Result<RecoveryReport> {
        let _stage = self.telemetry.as_ref().map(|s| s.span("recover"));
        let mut report = RecoveryReport::default();

        let (pending, corrupt) = self.journal.pending()?;
        report.journal_records_quarantined = corrupt.len() as u64;
        for (_, intent) in &pending {
            match intent {
                Intent::RepointIndex { entries } => {
                    let mut by_dest: BTreeMap<ContainerId, Vec<_>> = BTreeMap::new();
                    for (fp, dest) in entries {
                        by_dest.entry(*dest).or_default().push(*fp);
                    }
                    for (dest, fps) in by_dest {
                        match self.container_state(dest)? {
                            ContainerState::Intact => {
                                let meta = self.storage.get_container_meta(dest)?;
                                for fp in fps {
                                    if meta.find_live(&fp).is_some() {
                                        self.global.relocate(&fp, dest)?;
                                    }
                                }
                            }
                            ContainerState::Missing => {}
                            ContainerState::Corrupt => {
                                report.objects_quarantined += self.quarantine_container(dest)?;
                            }
                        }
                    }
                }
                Intent::RewriteContainer { old, new } => match self.container_state(*new)? {
                    ContainerState::Intact => {
                        // Roll forward: the new copy is authoritative.
                        let meta = self.storage.get_container_meta(*new)?;
                        for entry in meta.entries.iter().filter(|e| !e.deleted) {
                            match self.global.get(&entry.fp)? {
                                Some(c) if c == *old => self.global.relocate(&entry.fp, *new)?,
                                None => self.global.insert(&entry.fp, *new)?,
                                _ => {}
                            }
                        }
                        self.storage.delete_container(*old)?;
                        report.rewrites_rolled_forward += 1;
                    }
                    state => {
                        // Roll back: the old object was only deleted after
                        // the new one was durably written and the index
                        // flushed, so here the old copy must still be whole.
                        if matches!(state, ContainerState::Corrupt) {
                            report.objects_quarantined += self.quarantine_container(*new)?;
                        }
                        match self.storage.get_container_meta(*old) {
                            Ok(meta) => {
                                for entry in meta.entries.iter().filter(|e| !e.deleted) {
                                    match self.global.get(&entry.fp)? {
                                        Some(c) if c == *new => {
                                            self.global.relocate(&entry.fp, *old)?
                                        }
                                        None => self.global.insert(&entry.fp, *old)?,
                                        _ => {}
                                    }
                                }
                                report.rewrites_rolled_back += 1;
                            }
                            Err(SlimError::ContainerMissing(_)) => {}
                            Err(SlimError::Corrupt { .. }) => {
                                // Genuine bit-rot of the sole surviving copy:
                                // nothing to roll to. Quarantine and report.
                                report.objects_quarantined += self.quarantine_container(*old)?;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                },
                Intent::DropContainers { ids } => {
                    self.storage.delete_containers(ids)?;
                }
                Intent::DropObjects { keys } => {
                    // Redundancy-plane drops roll forward: re-delete.
                    for res in self.storage.oss().delete_many(keys) {
                        match res {
                            Ok(()) | Err(SlimError::ObjectNotFound(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        self.global.flush()?;
        for (seq, _) in &pending {
            self.journal.retire(*seq)?;
        }
        report.intents_replayed = pending.len() as u64;

        // Integrity sweep over the index's persistent runs; a dropped run
        // loses entries, so re-derive them from container metadata.
        let (quarantined, retired) = self.global.verify_and_repair()?;
        report.index_tables_quarantined = quarantined.len() as u64;
        report.index_tables_retired = retired as u64;
        if !quarantined.is_empty() {
            let (rederived, objects_quarantined) = self.rederive_index()?;
            report.index_entries_rederived = rederived;
            report.objects_quarantined += objects_quarantined;
        }

        if let Some(scope) = &self.telemetry {
            scope
                .counter("journal.replayed")
                .add(report.intents_replayed);
            scope
                .counter("journal.rolled_forward")
                .add(report.rewrites_rolled_forward);
            scope
                .counter("journal.rolled_back")
                .add(report.rewrites_rolled_back);
            scope
                .counter("journal.corrupt")
                .add(report.journal_records_quarantined);
            scope
                .counter("quarantined_objects")
                .add(report.objects_quarantined);
            scope
                .counter("index.tables_quarantined")
                .add(report.index_tables_quarantined);
            scope
                .counter("index.tables_retired")
                .add(report.index_tables_retired);
            scope
                .counter("index.entries_rederived")
                .add(report.index_entries_rederived);
        }
        Ok(report)
    }

    /// Full checksum sweep over every container's data and metadata objects.
    /// Corrupt containers are quarantined (both objects moved under the
    /// quarantine prefix) and their global-index entries removed, so reads
    /// fail honestly (`ChunkUnresolvable`) instead of returning garbage.
    /// This is the heavy half of `slim scrub`; [`GNode::recover`] only
    /// verifies what the journal implicates.
    pub fn verify_checksums(&self) -> Result<IntegrityReport> {
        let _stage = self.telemetry.as_ref().map(|s| s.span("verify_checksums"));
        let mut report = IntegrityReport::default();
        let mut doomed: HashSet<ContainerId> = HashSet::new();
        let mut ids = self.storage.list_containers();
        ids.sort();
        for id in ids {
            report.containers_checked += 1;
            if let ContainerState::Corrupt = self.container_state(id)? {
                report.containers_quarantined += 1;
                report.objects_quarantined += self.quarantine_container(id)?;
                doomed.insert(id);
            }
        }
        report.index_entries_removed = self.global.remove_references_to(&doomed)?;
        if let Some(scope) = &self.telemetry {
            scope
                .counter("integrity.containers_checked")
                .add(report.containers_checked);
            scope
                .counter("quarantined_objects")
                .add(report.objects_quarantined);
            scope
                .counter("integrity.index_entries_removed")
                .add(report.index_entries_removed);
        }
        Ok(report)
    }

    /// Full self-healing sweep (`slim scrub --repair`, and the cycle's
    /// repair stage): CRC-verify every container, quarantine damage, then
    /// reconstruct every repairable quarantined container from the
    /// redundancy plane and re-point the global index at the revived
    /// copies. Both halves are idempotent — verification quarantines by
    /// raw moves, reconstruction rewrites byte-identical primaries — so a
    /// kill at any point re-runs cleanly after [`GNode::recover`].
    pub fn repair(&self) -> Result<(IntegrityReport, RepairReport)> {
        let integrity = self.verify_checksums()?;
        let stage = self.telemetry.as_ref().map(|s| s.span("repair"));
        let repair = crate::redundancy::repair_quarantined(&self.storage, &self.global)?;
        drop(stage);
        if let Some(scope) = &self.telemetry {
            scope
                .counter("repair.containers_repaired")
                .add(repair.containers_repaired);
            scope
                .counter("repair.containers_unrepairable")
                .add(repair.containers_unrepairable);
            scope
                .counter("repair.objects_rewritten")
                .add(repair.objects_rewritten);
            scope
                .counter("repair.index_entries_restored")
                .add(repair.index_entries_restored);
        }
        Ok((integrity, repair))
    }

    /// Re-tier the redundancy plane to the current dedup state without
    /// running a full cycle (see [`crate::redundancy::update_redundancy`]).
    pub fn update_redundancy(&self) -> Result<RedundancyStats> {
        let _stage = self.telemetry.as_ref().map(|s| s.span("redundancy"));
        crate::redundancy::update_redundancy(
            &self.storage,
            &self.global,
            &self.journal,
            &self.config,
        )
    }

    /// Split the quarantined containers into `(repairable, lost)` counts by
    /// probing the redundancy plane for reconstruction sources.
    pub fn classify_quarantine(&self) -> Result<(u64, u64)> {
        crate::redundancy::classify_quarantine(self.storage.oss().as_ref())
    }

    /// Delete quarantined objects whose primaries are whole again; `force`
    /// discards everything, including unrepairable forensic copies.
    pub fn purge_quarantine(&self, force: bool) -> Result<PurgeReport> {
        crate::redundancy::purge_quarantine(self.storage.oss().as_ref(), force)
    }

    /// CRC-verify one container's pair of objects.
    ///
    /// Reads bypass the redundancy plane ([`ObjectStore::get_raw`]): this is
    /// the *detection* path, and a self-healing `get` would silently mask
    /// the damage it exists to find. Healing happens explicitly afterwards,
    /// in [`GNode::repair`] or the cycle's repair stage.
    fn container_state(&self, id: ContainerId) -> Result<ContainerState> {
        use slim_types::{crc, ContainerMeta};
        let oss = self.storage.oss();
        match oss.get_raw(&layout::container_meta(id)) {
            Ok(buf) => {
                let decoded = crc::unseal(&buf, "container meta")
                    .and_then(|payload| ContainerMeta::decode(&payload));
                if decoded.is_err() {
                    return Ok(ContainerState::Corrupt);
                }
            }
            Err(SlimError::ObjectNotFound(_)) => {
                // No meta. A leftover data object is a remnant, not a
                // container; report Corrupt so callers quarantine it.
                return match oss.exists(&layout::container_data(id))? {
                    true => Ok(ContainerState::Corrupt),
                    false => Ok(ContainerState::Missing),
                };
            }
            Err(e) => return Err(e),
        }
        match oss.get_raw(&layout::container_data(id)) {
            Ok(buf) => match crc::verified_payload_len(&buf, "container data") {
                Ok(_) => Ok(ContainerState::Intact),
                Err(_) => Ok(ContainerState::Corrupt),
            },
            Err(SlimError::ObjectNotFound(_)) => Ok(ContainerState::Corrupt),
            Err(e) => Err(e),
        }
    }

    /// Move a container's surviving objects under the quarantine prefix
    /// (raw byte moves — the objects may not decode, so the copy must not
    /// trigger read-repair either). Returns the number of objects moved.
    fn quarantine_container(&self, id: ContainerId) -> Result<u64> {
        let oss = self.storage.oss();
        let mut moved = 0u64;
        for key in [layout::container_data(id), layout::container_meta(id)] {
            match oss.get_raw(&key) {
                Ok(buf) => {
                    oss.put(&layout::quarantine_key(&key), buf)?;
                    oss.delete(&key)?;
                    moved += 1;
                }
                Err(SlimError::ObjectNotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(moved)
    }

    /// Rebuild global-index entries from container metadata after a corrupt
    /// index run was dropped. Ascending id order, so for a fingerprint with
    /// several live copies the newest container wins (the reverse-dedup
    /// invariant). Containers whose metadata fails verification are
    /// quarantined along the way. Returns `(entries inserted, objects
    /// quarantined)`.
    fn rederive_index(&self) -> Result<(u64, u64)> {
        let mut ids = self.storage.list_containers();
        ids.sort();
        let mut inserted = 0u64;
        let mut objects_quarantined = 0u64;
        let mut doomed: HashSet<ContainerId> = HashSet::new();
        for batch in ids.chunks(64) {
            for (&id, meta) in batch
                .iter()
                .zip(self.storage.get_container_meta_many(batch))
            {
                let meta = match meta {
                    Ok(meta) => meta,
                    Err(SlimError::ContainerMissing(_)) => continue,
                    Err(SlimError::Corrupt { .. }) => {
                        objects_quarantined += self.quarantine_container(id)?;
                        doomed.insert(id);
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                for entry in meta.entries.iter().filter(|e| !e.deleted) {
                    self.global.insert(&entry.fp, id)?;
                    inserted += 1;
                }
            }
        }
        self.global.flush()?;
        self.global.remove_references_to(&doomed)?;
        Ok((inserted, objects_quarantined))
    }

    /// Live bytes still held by the containers a version created — the
    /// Fig 9(b) "space occupied by version N" series (it shrinks over time
    /// as reverse dedup and SCC move data forward).
    pub fn version_occupied_bytes(&self, version: VersionId) -> Result<u64> {
        let manifest = self.storage.get_manifest(version)?;
        let mut total = 0u64;
        for &container in &manifest.new_containers {
            if self.storage.container_exists(container)? {
                total += self.storage.get_container_meta(container)?.live_bytes();
            }
        }
        Ok(total)
    }

    /// Containers referenced by a version's recipes (diagnostics).
    pub fn referenced_containers(&self, version: VersionId) -> Result<Vec<ContainerId>> {
        let manifest = self.storage.get_manifest(version)?;
        let mut refs = std::collections::HashSet::new();
        for file in &manifest.files {
            let recipe = self.storage.get_recipe(&file.file, version)?;
            refs.extend(recipe.records().map(|r| r.container_id));
        }
        let mut out: Vec<_> = refs.into_iter().collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::backup::BackupPipeline;
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::rocks::RocksConfig;
    use slim_oss::Oss;
    use slim_types::{FileId, VersionManifest};
    use std::sync::Arc;

    struct Env {
        oss: Oss,
        storage: StorageLayer,
        similar: SimilarFileIndex,
        gnode: GNode,
        config: SlimConfig,
    }

    fn setup() -> Env {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let similar = SimilarFileIndex::new();
        let global =
            GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::small_for_tests(), 8192)
                .unwrap();
        let config = SlimConfig::small_for_tests();
        let gnode = GNode::new(storage.clone(), global, similar.clone(), config.clone()).unwrap();
        Env {
            oss,
            storage,
            similar,
            gnode,
            config,
        }
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    impl Env {
        fn backup_version(&self, version: u64, files: &[(&FileId, &[u8])]) {
            let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.config));
            let pipeline =
                BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.config);
            let mut manifest = VersionManifest::new(VersionId(version));
            for (file, bytes) in files {
                let out = pipeline
                    .backup_file(file, VersionId(version), bytes)
                    .unwrap();
                manifest.files.push(out.info);
                manifest.new_containers.extend(out.new_containers);
            }
            self.storage.put_manifest(&manifest).unwrap();
        }

        fn restore(&self, file: &FileId, version: u64) -> Vec<u8> {
            RestoreEngine::new(&self.storage, Some(self.gnode.global_index()))
                .restore_file(
                    file,
                    VersionId(version),
                    &RestoreOptions::from_config(&self.config),
                )
                .unwrap()
                .0
        }
    }

    #[test]
    fn full_cycle_preserves_all_versions() {
        let env = setup();
        let a = FileId::new("a");
        let b = FileId::new("b");
        let mut versions: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut da = data(1, 40_000);
        let db = data(2, 24_000);
        for v in 0..4u64 {
            env.backup_version(v, &[(&a, &da), (&b, &db)]);
            env.gnode.run_cycle(VersionId(v)).unwrap();
            versions.push((da.clone(), db.clone()));
            let patch = data(50 + v, 2_000);
            let at = 3_000 + v as usize * 7_000;
            da[at..at + 2_000].copy_from_slice(&patch);
        }
        for (v, (ea, eb)) in versions.iter().enumerate() {
            assert_eq!(&env.restore(&a, v as u64), ea, "file a version {v}");
            assert_eq!(&env.restore(&b, v as u64), eb, "file b version {v}");
        }
    }

    #[test]
    fn reverse_dedup_catches_cross_file_duplicates() {
        let env = setup();
        let a = FileId::new("dir1/x");
        let b = FileId::new("dir2/y");
        let shared = data(3, 30_000);
        // Two different files with identical content, same version. Online
        // dedup of `b` may or may not find `a` (similarity detection), so
        // force the miss case by giving b a unique prefix.
        let mut b_content = data(4, 2_000);
        b_content.extend_from_slice(&shared);
        env.backup_version(0, &[(&a, &shared), (&b, &b_content)]);
        let stats = env.gnode.run_cycle(VersionId(0)).unwrap();
        let store_bytes = env.storage.container_store_bytes().unwrap();
        // Regardless of what online dedup caught, after the G-node cycle the
        // store holds at most one copy of the shared content (plus slack).
        assert!(
            store_bytes < (shared.len() + b_content.len()) as u64,
            "exact dedup should shrink the store: {store_bytes}"
        );
        assert!(stats.reverse.chunks_scanned > 0);
        assert_eq!(env.restore(&a, 0), shared);
        assert_eq!(env.restore(&b, 0), b_content);
    }

    #[test]
    fn old_version_space_shrinks_over_time() {
        let env = setup();
        let f = FileId::new("f");
        let mut cur = data(5, 48_000);
        env.backup_version(0, &[(&f, &cur)]);
        env.gnode.run_cycle(VersionId(0)).unwrap();
        let initial = env.gnode.version_occupied_bytes(VersionId(0)).unwrap();
        for v in 1..5u64 {
            // Keep small *scattered* slivers — one per v0 container — so
            // those containers are referenced at low utilization, become
            // sparse, and lose their useful chunks to SCC.
            let mut next = Vec::new();
            let filler = data(60 + v, 42_000);
            for i in 0..6usize {
                next.extend_from_slice(&cur[i * 8_000..i * 8_000 + 1_000]);
                next.extend_from_slice(&filler[i * 7_000..(i + 1) * 7_000]);
            }
            cur = next;
            env.backup_version(v, &[(&f, &cur)]);
            env.gnode.run_cycle(VersionId(v)).unwrap();
        }
        let final_bytes = env.gnode.version_occupied_bytes(VersionId(0)).unwrap();
        assert!(
            final_bytes < initial,
            "v0 occupied bytes should decrease: {initial} -> {final_bytes}"
        );
        // And version 0 still restores (relocations resolve globally).
        assert!(!env.restore(&f, 0).is_empty());
    }

    #[test]
    fn retention_window_reclaims_old_versions() {
        let env = setup();
        let f = FileId::new("f");
        let mut contents = Vec::new();
        let mut cur = data(6, 30_000);
        for v in 0..5u64 {
            env.backup_version(v, &[(&f, &cur)]);
            env.gnode.run_cycle(VersionId(v)).unwrap();
            contents.push(cur.clone());
            cur = {
                let keep = cur[..10_000].to_vec();
                let mut next = data(80 + v, 20_000);
                next.splice(0..0, keep);
                next
            };
        }
        // Keep only the last 3 versions.
        let before = env.storage.container_store_bytes().unwrap();
        env.gnode.collect_version(VersionId(0)).unwrap();
        env.gnode.collect_version(VersionId(1)).unwrap();
        let after = env.storage.container_store_bytes().unwrap();
        assert!(after <= before);
        for v in 2..5u64 {
            assert_eq!(env.restore(&f, v), contents[v as usize], "survivor {v}");
        }
        assert!(env.storage.get_recipe(&f, VersionId(0)).is_err());
    }

    #[test]
    fn scrub_after_cycles_reclaims_nothing_and_preserves_restores() {
        // Reverse dedup and SCC create and rewrite containers the manifests
        // never listed; the scrub's reachable set (manifests + recipes +
        // global index) must cover all of them.
        let env = setup();
        let f = FileId::new("f");
        let mut contents = Vec::new();
        let mut cur = data(9, 40_000);
        for v in 0..3u64 {
            env.backup_version(v, &[(&f, &cur)]);
            env.gnode.run_cycle(VersionId(v)).unwrap();
            contents.push(cur.clone());
            let patch = data(90 + v, 3_000);
            let at = 5_000 + v as usize * 9_000;
            cur[at..at + 3_000].copy_from_slice(&patch);
        }
        let stats = env.gnode.scrub_orphans().unwrap();
        assert_eq!(stats.objects_reclaimed(), 0, "{stats:?}");
        for (v, expect) in contents.iter().enumerate() {
            assert_eq!(&env.restore(&f, v as u64), expect, "version {v}");
        }
    }

    #[test]
    fn telemetry_scope_collects_cycle_stages() {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        let similar = SimilarFileIndex::new();
        let global =
            GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::small_for_tests(), 8192)
                .unwrap();
        let config = SlimConfig::small_for_tests();
        let registry = slim_telemetry::Registry::new();
        let gnode = GNode::new(storage.clone(), global, similar.clone(), config.clone())
            .unwrap()
            .with_telemetry(registry.scope("gnode"));
        let env = Env {
            oss,
            storage,
            similar,
            gnode,
            config,
        };

        let f = FileId::new("f");
        env.backup_version(0, &[(&f, &data(11, 40_000))]);
        env.gnode.run_cycle(VersionId(0)).unwrap();
        env.gnode.scrub_orphans().unwrap();

        let snap = registry.snapshot();
        for stage in ["cycle", "reverse_dedup", "scc", "mark", "scrub_orphans"] {
            let span = snap
                .span("gnode", stage)
                .unwrap_or_else(|| panic!("span {stage}"));
            assert_eq!(span.count, 1, "span {stage}");
            assert!(span.sum > 0, "span {stage} has duration");
        }
        assert_eq!(snap.counter("gnode.cycles"), 1);
        assert!(snap.counter("gnode.chunks_scanned") > 0);
        assert!(snap.counter("gnode.scrub_keys_scanned") > 0);
    }

    #[test]
    fn cycle_is_idempotent() {
        let env = setup();
        let f = FileId::new("f");
        let input = data(7, 30_000);
        env.backup_version(0, &[(&f, &input)]);
        env.gnode.run_cycle(VersionId(0)).unwrap();
        let bytes_after_first = env.storage.container_store_bytes().unwrap();
        let stats = env.gnode.run_cycle(VersionId(0)).unwrap();
        assert_eq!(stats.reverse.duplicates_removed, 0);
        assert_eq!(
            env.storage.container_store_bytes().unwrap(),
            bytes_after_first
        );
        assert_eq!(env.restore(&f, 0), input);
    }

    fn fp(b: u8) -> slim_types::Fingerprint {
        slim_types::Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn put_container(env: &Env, chunks: &[(u8, usize)]) -> ContainerId {
        let id = env.storage.allocate_container_id();
        let mut b = slim_types::ContainerBuilder::new(id, 1 << 20);
        for &(tag, len) in chunks {
            b.push(fp(tag), &vec![tag; len]);
        }
        let (data, meta) = b.seal();
        env.storage.put_container(data, &meta).unwrap();
        id
    }

    #[test]
    fn recover_is_noop_on_clean_state() {
        let env = setup();
        let f = FileId::new("f");
        env.backup_version(0, &[(&f, &data(30, 30_000))]);
        env.gnode.run_cycle(VersionId(0)).unwrap();
        let report = env.gnode.recover().unwrap();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn recover_rolls_interrupted_rewrite_forward() {
        let env = setup();
        // Simulate a rewrite killed after the new container was written and
        // its intent recorded, but before the index flip and old-object
        // delete: old still whole, index still pointing at it.
        let old = put_container(&env, &[(1, 100), (2, 100)]);
        let global = env.gnode.global_index();
        global.insert(&fp(1), old).unwrap();
        global.insert(&fp(2), old).unwrap();
        global.flush().unwrap();
        let new = put_container(&env, &[(1, 100), (2, 100)]);
        let journal = crate::journal::Journal::open(env.storage.oss().clone());
        journal
            .record(&Intent::RewriteContainer { old, new })
            .unwrap();

        let report = env.gnode.recover().unwrap();
        assert_eq!(report.intents_replayed, 1);
        assert_eq!(report.rewrites_rolled_forward, 1);
        assert_eq!(global.get(&fp(1)).unwrap(), Some(new));
        assert_eq!(global.get(&fp(2)).unwrap(), Some(new));
        assert!(!env.storage.container_exists(old).unwrap());
        assert!(journal.is_empty());
        assert!(env.gnode.recover().unwrap().is_clean());
    }

    #[test]
    fn recover_rolls_back_when_new_copy_is_corrupt() {
        use bytes::Bytes;
        let env = setup();
        // The index flip reached OSS but the new container's objects are
        // garbage (torn write): recovery must quarantine the remnants and
        // repoint the index at the still-whole old container.
        let old = put_container(&env, &[(1, 100), (2, 100)]);
        let new = env.storage.allocate_container_id();
        let global = env.gnode.global_index();
        global.insert(&fp(1), new).unwrap();
        global.insert(&fp(2), new).unwrap();
        global.flush().unwrap();
        let data_key = slim_types::layout::container_data(new);
        let meta_key = slim_types::layout::container_meta(new);
        env.oss.put(&data_key, Bytes::from(vec![0xAB; 64])).unwrap();
        env.oss.put(&meta_key, Bytes::from(vec![0xCD; 32])).unwrap();
        let journal = crate::journal::Journal::open(env.storage.oss().clone());
        journal
            .record(&Intent::RewriteContainer { old, new })
            .unwrap();

        let report = env.gnode.recover().unwrap();
        assert_eq!(report.rewrites_rolled_back, 1);
        assert_eq!(report.objects_quarantined, 2);
        assert_eq!(global.get(&fp(1)).unwrap(), Some(old));
        assert_eq!(global.get(&fp(2)).unwrap(), Some(old));
        let qkey = slim_types::layout::quarantine_key(&data_key);
        assert!(env.oss.exists(&qkey).unwrap());
        assert!(!env.oss.exists(&data_key).unwrap());
        assert!(env.storage.container_exists(old).unwrap());
        assert!(journal.is_empty());
    }

    #[test]
    fn recover_rederives_index_after_sst_quarantine() {
        let env = setup();
        let f = FileId::new("f");
        let mut contents = Vec::new();
        let mut cur = data(33, 40_000);
        for v in 0..3u64 {
            env.backup_version(v, &[(&f, &cur)]);
            env.gnode.run_cycle(VersionId(v)).unwrap();
            contents.push(cur.clone());
            let patch = data(60 + v, 3_000);
            let at = 5_000 + v as usize * 9_000;
            cur[at..at + 3_000].copy_from_slice(&patch);
        }
        // Rot one of the index's SSTable objects.
        let key = env
            .oss
            .list(slim_types::layout::GLOBAL_INDEX_PREFIX)
            .into_iter()
            .find(|k| k.contains("sst/"))
            .expect("cycles must have flushed an index run");
        let mut buf = env.oss.get(&key).unwrap().to_vec();
        buf[10] ^= 0x10;
        env.oss.put(&key, bytes::Bytes::from(buf)).unwrap();

        let report = env.gnode.recover().unwrap();
        assert!(report.index_tables_quarantined >= 1, "{report:?}");
        assert!(report.index_entries_rederived > 0, "{report:?}");
        // Old versions depend on the global index for relocated chunks; the
        // re-derived index must resolve all of them.
        for (v, expect) in contents.iter().enumerate() {
            assert_eq!(&env.restore(&f, v as u64), expect, "version {v}");
        }
    }

    #[test]
    fn verify_checksums_quarantines_corrupt_containers() {
        let env = setup();
        let f = FileId::new("f");
        let input = data(44, 40_000);
        env.backup_version(0, &[(&f, &input)]);
        env.gnode.run_cycle(VersionId(0)).unwrap();
        let clean = env.gnode.verify_checksums().unwrap();
        assert_eq!(clean.containers_quarantined, 0);
        assert!(clean.containers_checked > 0);

        // Rot one container's data object.
        let victim = *env.storage.list_containers().first().unwrap();
        let key = slim_types::layout::container_data(victim);
        let mut buf = env.oss.get(&key).unwrap().to_vec();
        buf[0] ^= 0x01;
        env.oss.put(&key, bytes::Bytes::from(buf)).unwrap();

        let report = env.gnode.verify_checksums().unwrap();
        assert_eq!(report.containers_quarantined, 1);
        assert_eq!(report.objects_quarantined, 2, "data and meta both move");
        assert!(report.index_entries_removed > 0);
        assert!(!env.storage.container_exists(victim).unwrap());
        assert!(env
            .oss
            .exists(&slim_types::layout::quarantine_key(&key))
            .unwrap());
        // The damaged version now fails honestly instead of returning bytes.
        let err = RestoreEngine::new(&env.storage, Some(env.gnode.global_index()))
            .restore_file(&f, VersionId(0), &RestoreOptions::from_config(&env.config))
            .unwrap_err();
        assert!(
            matches!(err, slim_types::SlimError::ChunkUnresolvable { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn cycle_builds_redundancy_plane() {
        let env = setup();
        let f = FileId::new("f");
        env.backup_version(0, &[(&f, &data(70, 60_000))]);
        let stats = env.gnode.run_cycle(VersionId(0)).unwrap();
        let ids = env.storage.list_containers();
        assert!(!ids.is_empty());
        // Every live container's metadata object is replicated.
        for id in &ids {
            let rkey = slim_types::layout::replica_key(&slim_types::layout::container_meta(*id));
            assert!(env.oss.exists(&rkey).unwrap(), "meta replica for {id:?}");
        }
        // Every data object is protected by one tier or the other.
        assert_eq!(
            stats.redundancy.replica_tier + stats.redundancy.parity_tier,
            ids.len() as u64,
            "{:?}",
            stats.redundancy
        );
        assert!(stats.redundancy.replicas_written >= ids.len() as u64);
    }

    #[test]
    fn retier_is_idempotent() {
        let env = setup();
        let f = FileId::new("f");
        env.backup_version(0, &[(&f, &data(72, 60_000))]);
        env.gnode.run_cycle(VersionId(0)).unwrap();
        let again = env.gnode.update_redundancy().unwrap();
        assert_eq!(again.replicas_written, 0, "{again:?}");
        assert_eq!(again.parity_groups_sealed, 0, "{again:?}");
        assert_eq!(again.objects_dropped, 0, "{again:?}");
    }

    #[test]
    fn repair_restores_quarantined_container_from_plane() {
        let env = setup();
        let f = FileId::new("f");
        let input = data(71, 60_000);
        env.backup_version(0, &[(&f, &input)]);
        env.gnode.run_cycle(VersionId(0)).unwrap(); // builds the plane
        let victim = *env.storage.list_containers().first().unwrap();
        let key = slim_types::layout::container_data(victim);
        let mut buf = env.oss.get(&key).unwrap().to_vec();
        buf[0] ^= 0x01;
        env.oss.put(&key, bytes::Bytes::from(buf)).unwrap();

        let (integrity, repair) = env.gnode.repair().unwrap();
        assert_eq!(integrity.containers_quarantined, 1);
        assert_eq!(repair.containers_repaired, 1, "{repair:?}");
        assert_eq!(repair.containers_unrepairable, 0);
        assert!(repair.objects_rewritten >= 1);
        // Second sweep is clean and the version restores byte-identically,
        // through the raw (non-healing) store.
        let clean = env.gnode.verify_checksums().unwrap();
        assert_eq!(clean.containers_quarantined, 0, "{clean:?}");
        assert_eq!(env.restore(&f, 0), input);
        // Purge releases the now-redundant quarantine copies.
        let purge = env.gnode.purge_quarantine(false).unwrap();
        assert_eq!(purge.objects_purged, 2, "{purge:?}");
        assert_eq!(purge.objects_kept, 0);
        assert!(env
            .oss
            .list(slim_types::layout::QUARANTINE_PREFIX)
            .is_empty());
    }

    #[test]
    fn repair_reconstructs_parity_tier_member_byte_identically() {
        let env = setup();
        // Three small containers with two references each: well below the
        // replica threshold, so their data objects land in one parity group.
        let a = put_container(&env, &[(1, 400), (2, 400)]);
        let b = put_container(&env, &[(3, 400), (4, 400)]);
        let c = put_container(&env, &[(5, 400), (6, 400)]);
        let global = env.gnode.global_index();
        for (id, tags) in [(a, [1u8, 2]), (b, [3, 4]), (c, [5, 6])] {
            for t in tags {
                global.insert(&fp(t), id).unwrap();
            }
        }
        global.flush().unwrap();
        let stats = env.gnode.update_redundancy().unwrap();
        assert_eq!(stats.parity_groups_sealed, 1, "{stats:?}");
        assert_eq!(stats.parity_tier, 3);

        // Delete one member's data object outright.
        let key = slim_types::layout::container_data(b);
        let before = env.oss.get(&key).unwrap();
        env.oss.delete(&key).unwrap();

        let (integrity, repair) = env.gnode.repair().unwrap();
        assert_eq!(integrity.containers_quarantined, 1);
        assert_eq!(repair.containers_repaired, 1, "{repair:?}");
        assert_eq!(
            env.oss.get(&key).unwrap(),
            before,
            "byte-identical reconstruction"
        );
        assert_eq!(global.get(&fp(3)).unwrap(), Some(b));
        assert_eq!(global.get(&fp(4)).unwrap(), Some(b));
    }

    #[test]
    fn unrepairable_damage_is_reported_and_quarantine_kept() {
        let env = setup();
        // A container with no redundancy plane behind it: damage is honest
        // loss, and the forensic quarantine copy survives a non-forced purge.
        let id = put_container(&env, &[(9, 500)]);
        env.gnode.global_index().insert(&fp(9), id).unwrap();
        env.gnode.global_index().flush().unwrap();
        let key = slim_types::layout::container_data(id);
        let mut buf = env.oss.get(&key).unwrap().to_vec();
        buf[4] ^= 0xFF;
        env.oss.put(&key, bytes::Bytes::from(buf)).unwrap();

        let (integrity, repair) = env.gnode.repair().unwrap();
        assert_eq!(integrity.containers_quarantined, 1);
        assert_eq!(repair.containers_repaired, 0);
        assert_eq!(repair.containers_unrepairable, 1, "{repair:?}");
        let (repairable, lost) = env.gnode.classify_quarantine().unwrap();
        assert_eq!((repairable, lost), (0, 1));
        let purge = env.gnode.purge_quarantine(false).unwrap();
        assert_eq!(purge.objects_purged, 0, "{purge:?}");
        assert_eq!(purge.objects_kept, 2);
        // Forced purge discards the forensic copies too.
        let purge = env.gnode.purge_quarantine(true).unwrap();
        assert_eq!(purge.objects_purged, 2);
        assert!(env
            .oss
            .list(slim_types::layout::QUARANTINE_PREFIX)
            .is_empty());
    }

    #[test]
    fn recover_replays_drop_objects_intent() {
        let env = setup();
        let stale = "redundancy/replica/containers/000000000042/data";
        env.oss
            .put(stale, bytes::Bytes::from_static(b"obsolete"))
            .unwrap();
        let journal = crate::journal::Journal::open(env.storage.oss().clone());
        journal
            .record(&Intent::DropObjects {
                keys: vec![stale.to_string()],
            })
            .unwrap();
        let report = env.gnode.recover().unwrap();
        assert_eq!(report.intents_replayed, 1);
        assert!(!env.oss.exists(stale).unwrap(), "drop rolled forward");
        assert!(journal.is_empty());
    }
}
