//! The G-node maintenance intent journal.
//!
//! Maintenance mutates shared state (containers, recipes, the global index)
//! in multi-object steps with no transactional OSS primitive underneath, so
//! every destructive step first records an **intent**: a small, CRC-sealed
//! OSS object describing the idempotent operation about to run. A cycle
//! killed at any point leaves its intents behind; [`crate::GNode::recover`]
//! replays them in sequence order, rolling each forward (when its outputs
//! are durable and intact) or back (when they are missing or corrupt), and
//! retires them once the journal's promise is discharged.
//!
//! Intents are deliberately *descriptions of convergence*, not redo logs:
//! replaying one against an already-completed state is a no-op, so recovery
//! never needs to know how far the dead cycle got.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use slim_oss::ObjectStore;
use slim_types::codec::{Reader, Writer};
use slim_types::{crc, layout, ContainerId, Fingerprint, Result, SlimError};

const INTENT_MAGIC: &[u8; 4] = b"SLJI";
const INTENT_VERSION: u8 = 1;

/// One idempotent maintenance operation, recorded before it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// Two-phase container rewrite: `new` is a fresh container holding the
    /// live chunks of `old`; once the index repoints at `new` durably, `old`
    /// is deleted. Roll forward if `new` is intact, roll back otherwise.
    RewriteContainer { old: ContainerId, new: ContainerId },
    /// Containers about to be deleted whose index entries are already gone
    /// (or repointed by an earlier intent). Replay re-deletes; deletion is
    /// idempotent.
    DropContainers { ids: Vec<ContainerId> },
    /// Fingerprints whose authoritative copy moved to a new container.
    /// Replay re-relocates each entry whose target container still holds a
    /// live copy — the marks on the old copies may be durable while the
    /// index update was lost with the memtable.
    RepointIndex {
        entries: Vec<(Fingerprint, ContainerId)>,
    },
    /// Redundancy-plane objects (replicas, parity blocks, group manifests)
    /// about to be dropped by a re-tier pass. Replay re-deletes; deletion is
    /// idempotent, so a crash between record and delete rolls forward.
    DropObjects { keys: Vec<String> },
}

impl Intent {
    /// Encode to the sealed on-OSS representation.
    pub fn encode(&self) -> bytes::Bytes {
        let mut w = Writer::with_header(INTENT_MAGIC, INTENT_VERSION);
        match self {
            Intent::RewriteContainer { old, new } => {
                w.u8(1);
                w.u64(old.0);
                w.u64(new.0);
            }
            Intent::DropContainers { ids } => {
                w.u8(2);
                w.u32(ids.len() as u32);
                for id in ids {
                    w.u64(id.0);
                }
            }
            Intent::RepointIndex { entries } => {
                w.u8(3);
                w.u32(entries.len() as u32);
                for (fp, id) in entries {
                    w.fingerprint(fp);
                    w.u64(id.0);
                }
            }
            Intent::DropObjects { keys } => {
                w.u8(4);
                w.u32(keys.len() as u32);
                for key in keys {
                    w.string(key);
                }
            }
        }
        crc::seal(&w.freeze())
    }

    /// Decode a sealed intent record; CRC and structural damage both surface
    /// as [`SlimError::Corrupt`].
    pub fn decode(buf: &bytes::Bytes) -> Result<Intent> {
        let payload = crc::unseal(buf, "journal intent")?;
        let mut r = Reader::new(&payload, "journal intent");
        r.expect_header(INTENT_MAGIC, INTENT_VERSION)?;
        let intent = match r.u8()? {
            1 => Intent::RewriteContainer {
                old: ContainerId(r.u64()?),
                new: ContainerId(r.u64()?),
            },
            2 => {
                let n = r.u32()? as usize;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(ContainerId(r.u64()?));
                }
                Intent::DropContainers { ids }
            }
            3 => {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let fp = r.fingerprint()?;
                    entries.push((fp, ContainerId(r.u64()?)));
                }
                Intent::RepointIndex { entries }
            }
            4 => {
                let n = r.u32()? as usize;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(r.string()?);
                }
                Intent::DropObjects { keys }
            }
            other => {
                return Err(SlimError::corrupt(
                    "journal intent",
                    format!("unknown intent kind {other}"),
                ))
            }
        };
        r.finish()?;
        Ok(intent)
    }
}

/// The OSS-backed intent journal. One per G-node; records are keyed by a
/// monotonic sequence number recovered on open, so replay order equals
/// record order.
pub struct Journal {
    oss: Arc<dyn ObjectStore>,
    next_seq: AtomicU64,
}

impl Journal {
    /// Open the journal, recovering the sequence allocator from the highest
    /// existing record key.
    pub fn open(oss: Arc<dyn ObjectStore>) -> Self {
        let next = oss
            .list(layout::JOURNAL_PREFIX)
            .iter()
            .filter_map(|k| layout::parse_journal_seq(k))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        Journal {
            oss,
            next_seq: AtomicU64::new(next),
        }
    }

    /// Durably record `intent` before acting on it. Returns the sequence
    /// number to pass to [`Journal::retire`] once the operation's effects
    /// are durable.
    pub fn record(&self, intent: &Intent) -> Result<u64> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        self.oss
            .put(&layout::journal_intent(seq), intent.encode())?;
        Ok(seq)
    }

    /// Discharge a recorded intent. Idempotent.
    pub fn retire(&self, seq: u64) -> Result<()> {
        self.oss.delete(&layout::journal_intent(seq))
    }

    /// All outstanding intents in sequence order, plus the keys of any
    /// journal records that failed their CRC or structural checks — those
    /// are moved under [`layout::QUARANTINE_PREFIX`] (a corrupt intent
    /// cannot be replayed, and must not block recovery forever).
    pub fn pending(&self) -> Result<(Vec<(u64, Intent)>, Vec<String>)> {
        let keys: Vec<String> = self
            .oss
            .list(layout::JOURNAL_PREFIX)
            .into_iter()
            .filter(|k| layout::parse_journal_seq(k).is_some())
            .collect();
        if keys.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        let mut intents = Vec::new();
        let mut corrupt = Vec::new();
        for (key, buf) in keys.iter().zip(self.oss.get_many(&keys)) {
            let seq = layout::parse_journal_seq(key).expect("filtered above");
            match buf {
                Ok(buf) => match Intent::decode(&buf) {
                    Ok(intent) => intents.push((seq, intent)),
                    Err(SlimError::Corrupt { .. }) => {
                        self.oss.put(&layout::quarantine_key(key), buf)?;
                        self.oss.delete(key)?;
                        corrupt.push(key.clone());
                    }
                    Err(e) => return Err(e),
                },
                Err(SlimError::ObjectNotFound(_)) => {} // retired concurrently
                Err(e) => return Err(e),
            }
        }
        intents.sort_by_key(|(seq, _)| *seq);
        Ok((intents, corrupt))
    }

    /// Number of outstanding journal records (diagnostics).
    pub fn len(&self) -> usize {
        self.oss.list(layout::JOURNAL_PREFIX).len()
    }

    /// Whether the journal has no outstanding records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn sample_intents() -> Vec<Intent> {
        vec![
            Intent::RewriteContainer {
                old: ContainerId(3),
                new: ContainerId(9),
            },
            Intent::DropContainers {
                ids: vec![ContainerId(1), ContainerId(2)],
            },
            Intent::RepointIndex {
                entries: vec![(fp(1), ContainerId(7)), (fp(2), ContainerId(8))],
            },
            Intent::DropObjects {
                keys: vec![
                    "redundancy/replica/containers/000000000001/data".into(),
                    "redundancy/groups/000000000000".into(),
                ],
            },
        ]
    }

    #[test]
    fn intent_codec_roundtrips() {
        for intent in sample_intents() {
            let buf = intent.encode();
            assert_eq!(Intent::decode(&buf).unwrap(), intent);
        }
    }

    #[test]
    fn record_pending_retire_lifecycle() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let journal = Journal::open(oss.clone());
        assert!(journal.is_empty());
        let mut seqs = Vec::new();
        for intent in sample_intents() {
            seqs.push(journal.record(&intent).unwrap());
        }
        let (pending, corrupt) = journal.pending().unwrap();
        assert!(corrupt.is_empty());
        assert_eq!(
            pending.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            seqs,
            "replay order equals record order"
        );
        assert_eq!(
            pending.iter().map(|(_, i)| i.clone()).collect::<Vec<_>>(),
            sample_intents()
        );
        for seq in &seqs {
            journal.retire(*seq).unwrap();
        }
        assert!(journal.is_empty());
        journal.retire(seqs[0]).unwrap(); // idempotent
    }

    #[test]
    fn sequence_allocator_survives_reopen() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let journal = Journal::open(oss.clone());
        let a = journal
            .record(&Intent::DropContainers { ids: vec![] })
            .unwrap();
        let reopened = Journal::open(oss);
        let b = reopened
            .record(&Intent::DropContainers { ids: vec![] })
            .unwrap();
        assert!(b > a, "reopened journal must not reuse sequence {a}");
    }

    #[test]
    fn corrupt_record_is_quarantined_not_replayed() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let journal = Journal::open(oss.clone());
        let good = journal
            .record(&Intent::RewriteContainer {
                old: ContainerId(1),
                new: ContainerId(2),
            })
            .unwrap();
        let bad = journal
            .record(&Intent::DropContainers {
                ids: vec![ContainerId(5)],
            })
            .unwrap();
        let key = layout::journal_intent(bad);
        let mut buf = oss.get(&key).unwrap().to_vec();
        buf[6] ^= 0x04;
        oss.put(&key, bytes::Bytes::from(buf)).unwrap();
        let (pending, corrupt) = journal.pending().unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, good);
        assert_eq!(corrupt, vec![key.clone()]);
        assert!(oss.exists(&layout::quarantine_key(&key)).unwrap());
        assert!(!oss.exists(&key).unwrap());
        // A second pass sees a clean journal minus the quarantined record.
        let (pending, corrupt) = journal.pending().unwrap();
        assert_eq!(pending.len(), 1);
        assert!(corrupt.is_empty());
    }
}
