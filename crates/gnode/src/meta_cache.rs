//! Write-back cache of container metadata.
//!
//! Reverse deduplication touches the metadata of many old containers; the
//! paper notes that "caching the meta of the old container can also reduce
//! the access number of Rocks-OSS" (§VI-A). This cache keeps recently used
//! [`ContainerMeta`] objects in memory, tracks which are dirty (deletion
//! marks added) and flushes them back to OSS in one pass at the end of a
//! G-node cycle.

use std::collections::{HashMap, VecDeque};

use slim_lnode::StorageLayer;
use slim_types::{ContainerId, ContainerMeta, Result};

/// LRU write-back cache of container metadata.
pub struct MetaCache {
    storage: StorageLayer,
    capacity: usize,
    entries: HashMap<ContainerId, ContainerMeta>,
    dirty: HashMap<ContainerId, bool>,
    lru: VecDeque<ContainerId>,
    /// Metadata fetches that hit the cache.
    pub hits: u64,
    /// Metadata fetches that went to OSS.
    pub misses: u64,
}

impl MetaCache {
    /// Cache holding at most `capacity` metadata objects.
    pub fn new(storage: StorageLayer, capacity: usize) -> Self {
        MetaCache {
            storage,
            capacity: capacity.max(1),
            entries: HashMap::new(),
            dirty: HashMap::new(),
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Pre-load many containers' metadata in one batched OSS sweep.
    ///
    /// Only ids not already cached are fetched (at most `capacity` of them,
    /// newest-listed first, so the warm-up itself cannot thrash the cache).
    /// Per-item fetch errors are ignored here: a later demand [`MetaCache::get`]
    /// on that id re-surfaces the error to the caller that needs the value.
    pub fn warm_up(&mut self, ids: &[ContainerId]) {
        let mut wanted: Vec<ContainerId> = Vec::new();
        for &id in ids {
            if !self.entries.contains_key(&id) && !wanted.contains(&id) {
                wanted.push(id);
            }
            if wanted.len() == self.capacity {
                break;
            }
        }
        if wanted.is_empty() {
            return;
        }
        for (id, result) in wanted
            .iter()
            .zip(self.storage.get_container_meta_many(&wanted))
        {
            if let Ok(meta) = result {
                self.misses += 1;
                self.entries.insert(*id, meta);
                self.touch(*id);
            }
        }
        self.evict_if_needed();
    }

    /// Fetch metadata (cached).
    pub fn get(&mut self, id: ContainerId) -> Result<&ContainerMeta> {
        self.ensure_loaded(id)?;
        Ok(self.entries.get(&id).expect("just loaded"))
    }

    /// Mutate metadata in place; marks it dirty.
    pub fn update<R>(
        &mut self,
        id: ContainerId,
        f: impl FnOnce(&mut ContainerMeta) -> R,
    ) -> Result<R> {
        self.ensure_loaded(id)?;
        let meta = self.entries.get_mut(&id).expect("just loaded");
        let out = f(meta);
        self.dirty.insert(id, true);
        Ok(out)
    }

    /// Replace the metadata wholesale (container rewrite).
    pub fn put(&mut self, meta: ContainerMeta) {
        let id = meta.id;
        if !self.entries.contains_key(&id) {
            self.touch(id);
        }
        self.entries.insert(id, meta);
        self.dirty.insert(id, true);
        self.evict_if_needed();
    }

    /// Drop a container from the cache without flushing (it was deleted).
    pub fn forget(&mut self, id: ContainerId) {
        self.entries.remove(&id);
        self.dirty.remove(&id);
        self.lru.retain(|&x| x != id);
    }

    /// Write all dirty metadata back to OSS.
    pub fn flush(&mut self) -> Result<()> {
        for (id, dirty) in self.dirty.iter_mut() {
            if *dirty {
                if let Some(meta) = self.entries.get(id) {
                    self.storage.put_container_meta(meta)?;
                }
                *dirty = false;
            }
        }
        self.dirty.retain(|_, d| *d);
        Ok(())
    }

    /// Number of cached metadata objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn ensure_loaded(&mut self, id: ContainerId) -> Result<()> {
        if self.entries.contains_key(&id) {
            self.hits += 1;
            self.touch(id);
            return Ok(());
        }
        self.misses += 1;
        let meta = self.storage.get_container_meta(id)?;
        self.entries.insert(id, meta);
        self.touch(id);
        self.evict_if_needed();
        Ok(())
    }

    fn touch(&mut self, id: ContainerId) {
        self.lru.retain(|&x| x != id);
        self.lru.push_back(id);
    }

    fn evict_if_needed(&mut self) {
        while self.entries.len() > self.capacity {
            let Some(victim) = self.lru.front().copied() else {
                return;
            };
            // Never evict dirty entries silently: flush the victim first.
            if self.dirty.get(&victim).copied().unwrap_or(false) {
                if let Some(meta) = self.entries.get(&victim) {
                    // Flush errors during eviction would lose updates;
                    // surface them by keeping the entry if the put fails.
                    if self.storage.put_container_meta(meta).is_err() {
                        return;
                    }
                }
                self.dirty.remove(&victim);
            }
            self.lru.pop_front();
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;
    use slim_types::{ContainerBuilder, Fingerprint};
    use std::sync::Arc;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn store(storage: &StorageLayer, b: u8) -> ContainerId {
        let id = storage.allocate_container_id();
        let mut builder = ContainerBuilder::new(id, 1024);
        builder.push(fp(b), &[b; 32]);
        builder.push(fp(b + 100), &[b; 16]);
        let (data, meta) = builder.seal();
        storage.put_container(data, &meta).unwrap();
        id
    }

    #[test]
    fn get_caches_and_counts() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store(&storage, 1);
        let mut cache = MetaCache::new(storage, 4);
        cache.get(id).unwrap();
        cache.get(id).unwrap();
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn update_marks_dirty_and_flush_persists() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store(&storage, 2);
        let mut cache = MetaCache::new(storage.clone(), 4);
        cache
            .update(id, |m| assert!(m.mark_deleted(&fp(2))))
            .unwrap();
        // Not yet flushed: OSS copy still shows the chunk live.
        let on_oss = storage.get_container_meta(id).unwrap();
        assert!(on_oss.find_live(&fp(2)).is_some());
        cache.flush().unwrap();
        let on_oss = storage.get_container_meta(id).unwrap();
        assert!(on_oss.find_live(&fp(2)).is_none());
    }

    #[test]
    fn eviction_flushes_dirty_victims() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let ids: Vec<_> = (0..5u8).map(|b| store(&storage, b)).collect();
        let mut cache = MetaCache::new(storage.clone(), 2);
        cache.update(ids[0], |m| m.mark_deleted(&fp(0))).unwrap();
        for &id in &ids[1..] {
            cache.get(id).unwrap();
        }
        assert!(cache.len() <= 2);
        // ids[0] was evicted while dirty: its update must be on OSS.
        let on_oss = storage.get_container_meta(ids[0]).unwrap();
        assert!(on_oss.find_live(&fp(0)).is_none());
    }

    #[test]
    fn forget_discards_without_flush() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store(&storage, 9);
        let mut cache = MetaCache::new(storage.clone(), 4);
        cache.update(id, |m| m.mark_deleted(&fp(9))).unwrap();
        cache.forget(id);
        cache.flush().unwrap();
        let on_oss = storage.get_container_meta(id).unwrap();
        assert!(on_oss.find_live(&fp(9)).is_some(), "forget must not flush");
        assert!(cache.is_empty());
    }

    #[test]
    fn warm_up_batches_fetches_and_respects_capacity() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let ids: Vec<_> = (0..6u8).map(|b| store(&storage, b)).collect();
        let mut cache = MetaCache::new(storage, 4);
        cache.warm_up(&ids);
        assert_eq!(cache.len(), 4, "warm-up never exceeds capacity");
        assert_eq!(cache.misses, 4);
        // Warmed entries hit; missing ids still error on demand.
        cache.get(ids[0]).unwrap();
        assert_eq!(cache.hits, 1);
        cache.warm_up(&ids[..2]);
        assert_eq!(cache.misses, 4, "already-cached ids are not refetched");
        assert!(cache.get(ContainerId(999)).is_err());
    }

    #[test]
    fn put_replaces_wholesale() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store(&storage, 3);
        let mut cache = MetaCache::new(storage.clone(), 4);
        let mut meta = storage.get_container_meta(id).unwrap();
        meta.entries.clear();
        meta.data_len = 0;
        cache.put(meta);
        cache.flush().unwrap();
        assert_eq!(storage.get_container_meta(id).unwrap().total_chunks(), 0);
    }
}
