//! OSS key layout of the SLIMSTORE storage layer.
//!
//! All components agree on this single naming scheme, so the storage layer
//! (§III-B) is fully described by the object store contents: container data
//! and metadata, per-file-version recipes and recipe indexes, per-version
//! manifests, the similar-file index snapshot, and the Rocks-OSS prefix of
//! the global index.

use crate::container::ContainerId;
use crate::version::{FileId, VersionId};

/// Key of a container's data object.
pub fn container_data(id: ContainerId) -> String {
    format!("containers/{:012}/data", id.0)
}

/// Key of a container's metadata object.
pub fn container_meta(id: ContainerId) -> String {
    format!("containers/{:012}/meta", id.0)
}

/// Prefix listing both objects of a container.
pub fn container_prefix(id: ContainerId) -> String {
    format!("containers/{:012}/", id.0)
}

/// Key of the recipe of `file` at `version`.
pub fn recipe(file: &FileId, version: VersionId) -> String {
    format!("recipes/{}/{:08}", file.as_str(), version.0)
}

/// Key of the recipe index of `file` at `version`.
pub fn recipe_index(file: &FileId, version: VersionId) -> String {
    format!("recipe-index/{}/{:08}", file.as_str(), version.0)
}

/// Key of the manifest of `version`.
pub fn version_manifest(version: VersionId) -> String {
    format!("versions/{:08}", version.0)
}

/// Prefix of all version manifests.
pub const VERSION_PREFIX: &str = "versions/";

/// Key of the similar-file index snapshot.
pub const SIMILAR_INDEX: &str = "similar-index/current";

/// Rocks-OSS prefix of the global fingerprint index.
pub const GLOBAL_INDEX_PREFIX: &str = "global-index/";

/// Prefix of all container objects (for space accounting).
pub const CONTAINER_PREFIX: &str = "containers/";

/// Prefix of all recipe objects.
pub const RECIPE_PREFIX: &str = "recipes/";

/// Prefix of all recipe-index objects.
pub const RECIPE_INDEX_PREFIX: &str = "recipe-index/";

/// Prefix of the G-node maintenance intent journal.
pub const JOURNAL_PREFIX: &str = "gnode-journal/";

/// Prefix under which corrupted objects are parked for offline forensics.
pub const QUARANTINE_PREFIX: &str = "quarantine/";

/// Prefix of the whole redundancy plane (replicas, parity blocks, group
/// manifests). Lives outside [`CONTAINER_PREFIX`] so orphan scrubs and
/// container space accounting never confuse protection copies with
/// primaries.
pub const REDUNDANCY_PREFIX: &str = "redundancy/";

/// Prefix of full-replica protection copies; a replica key is the primary
/// key relocated under this prefix (mirroring [`quarantine_key`]).
pub const REPLICA_PREFIX: &str = "redundancy/replica/";

/// Prefix of CRC-sealed parity-group manifests, keyed by group id.
pub const PARITY_GROUP_PREFIX: &str = "redundancy/groups/";

/// Prefix of CRC-sealed XOR parity blocks, keyed by group id.
pub const PARITY_DATA_PREFIX: &str = "redundancy/parity/";

/// Key of intent-journal record `seq`.
pub fn journal_intent(seq: u64) -> String {
    format!("{JOURNAL_PREFIX}{seq:012}")
}

/// Parse the sequence number out of a `gnode-journal/{:012}` key.
pub fn parse_journal_seq(key: &str) -> Option<u64> {
    key.strip_prefix(JOURNAL_PREFIX)?.parse::<u64>().ok()
}

/// Quarantine key for a corrupted object: the original key, relocated under
/// [`QUARANTINE_PREFIX`] so nothing in the live layout resolves to it.
pub fn quarantine_key(original: &str) -> String {
    format!("{QUARANTINE_PREFIX}{original}")
}

/// Replica key protecting `original`: the primary key relocated under
/// [`REPLICA_PREFIX`], so the mapping is invertible via
/// [`replica_original`].
pub fn replica_key(original: &str) -> String {
    format!("{REPLICA_PREFIX}{original}")
}

/// Invert [`replica_key`]: the primary key a replica protects.
pub fn replica_original(key: &str) -> Option<&str> {
    key.strip_prefix(REPLICA_PREFIX)
}

/// Key of parity group `gid`'s manifest.
pub fn parity_group_manifest(gid: u64) -> String {
    format!("{PARITY_GROUP_PREFIX}{gid:012}")
}

/// Key of parity group `gid`'s XOR parity block.
pub fn parity_data(gid: u64) -> String {
    format!("{PARITY_DATA_PREFIX}{gid:012}")
}

/// Parse the group id out of a `redundancy/groups/{:012}` key.
pub fn parse_parity_group_key(key: &str) -> Option<u64> {
    key.strip_prefix(PARITY_GROUP_PREFIX)?.parse::<u64>().ok()
}

/// Parse the container id out of a `containers/{:012}/...` key.
///
/// Returns `None` for keys outside the container prefix or with a malformed
/// id segment, so scrub passes can skip unknown keys conservatively.
pub fn parse_container_key(key: &str) -> Option<ContainerId> {
    let rest = key.strip_prefix(CONTAINER_PREFIX)?;
    let (id, _) = rest.split_once('/')?;
    id.parse::<u64>().ok().map(ContainerId)
}

/// Parse the version id out of a `recipes/<file>/{:08}` or
/// `recipe-index/<file>/{:08}` key (file ids may themselves contain `/`).
pub fn parse_recipe_version(key: &str) -> Option<VersionId> {
    let rest = key
        .strip_prefix(RECIPE_PREFIX)
        .or_else(|| key.strip_prefix(RECIPE_INDEX_PREFIX))?;
    let (_, version) = rest.rsplit_once('/')?;
    version.parse::<u64>().ok().map(VersionId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_sortable() {
        assert_eq!(
            container_data(ContainerId(7)),
            "containers/000000000007/data"
        );
        assert_eq!(
            container_meta(ContainerId(7)),
            "containers/000000000007/meta"
        );
        assert!(container_data(ContainerId(9)) < container_data(ContainerId(10)));
        let f = FileId::new("db/t1.ibd");
        assert_eq!(recipe(&f, VersionId(3)), "recipes/db/t1.ibd/00000003");
        assert_eq!(
            recipe_index(&f, VersionId(3)),
            "recipe-index/db/t1.ibd/00000003"
        );
        assert_eq!(version_manifest(VersionId(12)), "versions/00000012");
        assert!(version_manifest(VersionId(2)) < version_manifest(VersionId(10)));
    }

    #[test]
    fn parses_container_and_recipe_keys() {
        assert_eq!(
            parse_container_key("containers/000000000042/data"),
            Some(ContainerId(42))
        );
        assert_eq!(
            parse_container_key("containers/000000000042/meta"),
            Some(ContainerId(42))
        );
        assert_eq!(parse_container_key("recipes/f/00000001"), None);
        assert_eq!(parse_container_key("containers/xx/data"), None);
        assert_eq!(
            parse_recipe_version("recipes/db/t1.ibd/00000003"),
            Some(VersionId(3))
        );
        assert_eq!(
            parse_recipe_version("recipe-index/db/t1.ibd/00000003"),
            Some(VersionId(3))
        );
        assert_eq!(parse_recipe_version("versions/00000003"), None);
        assert_eq!(parse_recipe_version("recipes/odd"), None);
    }

    #[test]
    fn journal_and_quarantine_keys() {
        assert_eq!(journal_intent(7), "gnode-journal/000000000007");
        assert_eq!(parse_journal_seq("gnode-journal/000000000007"), Some(7));
        assert_eq!(parse_journal_seq("gnode-journal/xx"), None);
        assert_eq!(parse_journal_seq("containers/000000000007/data"), None);
        assert!(
            journal_intent(2) < journal_intent(10),
            "seqs sort textually"
        );
        assert_eq!(
            quarantine_key("containers/000000000001/data"),
            "quarantine/containers/000000000001/data"
        );
    }

    #[test]
    fn redundancy_keys() {
        let primary = container_data(ContainerId(7));
        let rep = replica_key(&primary);
        assert_eq!(rep, "redundancy/replica/containers/000000000007/data");
        assert_eq!(replica_original(&rep), Some(primary.as_str()));
        assert_eq!(replica_original(&primary), None);
        assert_eq!(parity_group_manifest(3), "redundancy/groups/000000000003");
        assert_eq!(parity_data(3), "redundancy/parity/000000000003");
        assert_eq!(
            parse_parity_group_key("redundancy/groups/000000000003"),
            Some(3)
        );
        assert_eq!(
            parse_parity_group_key("redundancy/parity/000000000003"),
            None
        );
        for key in [
            replica_key(&primary),
            parity_group_manifest(3),
            parity_data(3),
        ] {
            assert!(key.starts_with(REDUNDANCY_PREFIX));
            assert!(!key.starts_with(CONTAINER_PREFIX));
        }
        assert!(parity_group_manifest(2) < parity_group_manifest(10));
    }

    #[test]
    fn container_keys_share_prefix() {
        let id = ContainerId(42);
        assert!(container_data(id).starts_with(&container_prefix(id)));
        assert!(container_meta(id).starts_with(&container_prefix(id)));
        assert!(container_prefix(id).starts_with(CONTAINER_PREFIX));
    }
}
