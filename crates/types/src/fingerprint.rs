//! Chunk fingerprints.
//!
//! The paper fingerprints every chunk with a cryptographically secure hash
//! (SHA-1, §II). Two chunks are considered identical iff their fingerprints
//! are equal; the system never does byte-comparison of chunk payloads on the
//! dedup path.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Length in bytes of a fingerprint (SHA-1 digest size).
pub const FINGERPRINT_LEN: usize = 20;

/// A 160-bit chunk fingerprint.
///
/// Ordered and hashable so it can key in-memory indexes and sort into SSTable
/// runs. The first eight bytes are used as a well-mixed 64-bit prefix for
/// sampling and bloom-filter hashing (SHA-1 output is uniform, so any fixed
/// prefix is unbiased).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fingerprint(pub [u8; FINGERPRINT_LEN]);

impl Fingerprint {
    /// The all-zero fingerprint, used as a sentinel in fixed-width encodings.
    pub const ZERO: Fingerprint = Fingerprint([0u8; FINGERPRINT_LEN]);

    /// Construct from a raw digest.
    pub fn from_bytes(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }

    /// Construct from a slice; returns `None` if the length is wrong.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        if slice.len() != FINGERPRINT_LEN {
            return None;
        }
        let mut buf = [0u8; FINGERPRINT_LEN];
        buf.copy_from_slice(slice);
        Some(Fingerprint(buf))
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; FINGERPRINT_LEN] {
        &self.0
    }

    /// A 64-bit prefix of the digest, big-endian.
    ///
    /// Used for sampling (`prefix64() % R == 0`) and as the base hash for
    /// bloom filters.
    pub fn prefix64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("fingerprint >= 8 bytes"))
    }

    /// The random-sampling predicate used throughout the paper
    /// (fingerprints with `fp mod R == 0` are representative samples).
    ///
    /// `rate == 0` or `rate == 1` samples everything.
    pub fn is_sample(&self, rate: u64) -> bool {
        if rate <= 1 {
            return true;
        }
        self.prefix64() % rate == 0
    }

    /// Lowercase hex rendering of the full digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(FINGERPRINT_LEN * 2);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Short hex rendering (first 8 hex chars) for logs and errors.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({})", self.short_hex())
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; FINGERPRINT_LEN]> for Fingerprint {
    fn from(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_with_prefix(prefix: u64) -> Fingerprint {
        let mut bytes = [0u8; FINGERPRINT_LEN];
        bytes[..8].copy_from_slice(&prefix.to_be_bytes());
        Fingerprint(bytes)
    }

    #[test]
    fn prefix64_roundtrip() {
        let fp = fp_with_prefix(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(fp.prefix64(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn sampling_rate_one_accepts_all() {
        for p in [0u64, 1, 7, u64::MAX] {
            assert!(fp_with_prefix(p).is_sample(1));
            assert!(fp_with_prefix(p).is_sample(0));
        }
    }

    #[test]
    fn sampling_mod_semantics() {
        assert!(fp_with_prefix(64).is_sample(64));
        assert!(!fp_with_prefix(65).is_sample(64));
        assert!(fp_with_prefix(0).is_sample(64));
    }

    #[test]
    fn hex_rendering() {
        let mut bytes = [0u8; FINGERPRINT_LEN];
        bytes[0] = 0xab;
        bytes[19] = 0x01;
        let fp = Fingerprint(bytes);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 40);
        assert!(hex.starts_with("ab"));
        assert!(hex.ends_with("01"));
        assert_eq!(fp.short_hex(), "ab000000");
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Fingerprint::from_slice(&[0u8; 19]).is_none());
        assert!(Fingerprint::from_slice(&[0u8; 21]).is_none());
        let fp = Fingerprint::from_slice(&[7u8; 20]).unwrap();
        assert_eq!(fp.as_bytes(), &[7u8; 20]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Fingerprint::from_slice(&[0u8; 20]).unwrap();
        let mut high = [0u8; 20];
        high[0] = 1;
        let b = Fingerprint(high);
        assert!(a < b);
    }
}
