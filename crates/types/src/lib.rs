//! Core data structures and binary formats shared by every SLIMSTORE crate.
//!
//! This crate defines the vocabulary of the system described in
//! *"SLIMSTORE: A Cloud-based Deduplication System for Multi-version Backups"*
//! (ICDE 2021):
//!
//! * [`Fingerprint`] — SHA-1 chunk fingerprints and sampling predicates;
//! * [`ChunkRecord`] — the recipe quadruple
//!   ⟨fp, containerID, size, duplicateTimes⟩ plus superchunk metadata;
//! * [`Recipe`] / [`SegmentRecipe`] — the logical chunk sequence of one backup
//!   file version, grouped into segments (§III-B of the paper);
//! * [`RecipeIndex`] — sampled fingerprints → segment-recipe offsets;
//! * [`ContainerMeta`] — physical layout of a container: per-chunk offsets,
//!   deletion marks, and stale-chunk accounting;
//! * [`VersionManifest`] — per-version bookkeeping: files, new containers and
//!   garbage containers discovered during deduplication (§VI-B);
//! * [`SlimConfig`] — every tunable the paper mentions, with the paper's
//!   defaults.
//!
//! Everything that crosses the OSS boundary has a versioned binary encoding
//! (see [`codec`]) so that the storage layer stores bytes, not Rust objects.

pub mod bloom;
pub mod chunk;
pub mod codec;
pub mod compress;
pub mod config;
pub mod container;
pub mod crc;
pub mod deadline;
pub mod error;
pub mod fingerprint;
pub mod layout;
pub mod recipe;
pub mod redundancy;
pub mod version;

pub use bloom::{BloomFilter, CountingBloomFilter};
pub use chunk::{ChunkRecord, SuperChunkInfo};
pub use config::SlimConfig;
pub use container::{
    CompressionStats, ContainerBuilder, ContainerEntry, ContainerId, ContainerMeta,
};
pub use deadline::{Deadline, DeadlineGuard};
pub use error::{Result, SlimError};
pub use fingerprint::Fingerprint;
pub use recipe::{Recipe, RecipeIndex, RecipeIndexEntry, SegmentRecipe};
pub use redundancy::{GroupMember, ParityGroup};
pub use version::{FileBackupInfo, FileId, VersionId, VersionManifest};
