//! End-to-end deadline propagation.
//!
//! A request admitted by the frontend carries a latency budget; every layer
//! under it (retries, hedges, prefetches) should spend from that *one*
//! budget instead of each applying its own static per-op policy. [`Deadline`]
//! is the carrier: an absolute point in time (or "never"), cheap to copy,
//! with saturating arithmetic so an expired deadline simply reports zero
//! remaining budget.
//!
//! Because the object-store traits are synchronous and deep call stacks
//! would need the deadline threaded through every signature, the deadline
//! travels *ambiently*: [`Deadline::install`] binds it to the current thread
//! (restoring the previous binding on drop), and storage wrappers consult
//! [`Deadline::current`] before issuing work. Worker threads that serve a
//! request (prefetchers, pipeline stages) capture the submitting thread's
//! deadline at hand-off and install it in their own loop. The default
//! binding is [`Deadline::never`], so code outside a deadline scope is
//! completely unaffected.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static CURRENT: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// An absolute wall-clock deadline, or no deadline at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: never expires, unbounded remaining budget.
    pub const fn never() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at: Some(at) }
    }

    /// Whether this deadline carries a bound at all.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Remaining budget: `None` when unbounded, `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Whether waiting `wait` would run past the deadline.
    pub fn would_exceed(&self, wait: Duration) -> bool {
        match self.remaining() {
            Some(remaining) => wait >= remaining,
            None => false,
        }
    }

    /// The earlier of two deadlines (an unbounded side never wins).
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }

    /// The deadline ambiently bound to the current thread
    /// ([`Deadline::never`] outside any [`Deadline::install`] scope).
    pub fn current() -> Deadline {
        Deadline {
            at: CURRENT.with(|c| c.get()),
        }
    }

    /// Bind this deadline to the current thread until the guard drops; the
    /// previous binding (if any) is restored, so scopes nest. An installed
    /// bounded deadline is additionally capped by whatever was already
    /// bound — a nested scope can only tighten the budget, never extend it.
    pub fn install(self) -> DeadlineGuard {
        let previous = CURRENT.with(|c| c.get());
        let effective = self.min(Deadline { at: previous });
        CURRENT.with(|c| c.set(effective.at));
        DeadlineGuard { previous }
    }

    /// Run `f` with this deadline ambiently bound (see [`Deadline::install`]).
    pub fn scope<T>(self, f: impl FnOnce() -> T) -> T {
        let _guard = self.install();
        f()
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::never()
    }
}

/// Restores the previously bound ambient deadline on drop.
#[must_use = "dropping the guard immediately unbinds the deadline"]
pub struct DeadlineGuard {
    previous: Option<Instant>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        CURRENT.with(|c| c.set(previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_unbounded_and_default() {
        let d = Deadline::never();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert!(!d.would_exceed(Duration::from_secs(3600)));
        assert_eq!(Deadline::default(), Deadline::never());
    }

    #[test]
    fn within_expires_and_saturates() {
        let d = Deadline::within(Duration::from_millis(5));
        assert!(d.is_bounded());
        assert!(!d.expired());
        assert!(d.remaining().unwrap() <= Duration::from_millis(5));
        assert!(d.would_exceed(Duration::from_secs(1)));
        std::thread::sleep(Duration::from_millis(6));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(d.would_exceed(Duration::ZERO));
    }

    #[test]
    fn min_prefers_the_earlier_bound() {
        let early = Deadline::within(Duration::from_millis(1));
        let late = Deadline::within(Duration::from_secs(10));
        assert_eq!(early.min(late), early);
        assert_eq!(late.min(early), early);
        assert_eq!(early.min(Deadline::never()), early);
        assert_eq!(Deadline::never().min(early), early);
        assert_eq!(Deadline::never().min(Deadline::never()), Deadline::never());
    }

    #[test]
    fn ambient_binding_nests_and_restores() {
        assert_eq!(Deadline::current(), Deadline::never());
        let outer = Deadline::within(Duration::from_secs(5));
        outer.scope(|| {
            assert_eq!(Deadline::current(), outer);
            let inner = Deadline::within(Duration::from_secs(1));
            inner.scope(|| {
                assert_eq!(Deadline::current(), inner, "tighter inner wins");
            });
            assert_eq!(Deadline::current(), outer, "restored after inner");
            // A looser nested scope cannot extend the budget.
            Deadline::within(Duration::from_secs(60)).scope(|| {
                assert_eq!(Deadline::current(), outer);
            });
            // An unbounded nested scope cannot clear it either.
            Deadline::never().scope(|| {
                assert_eq!(Deadline::current(), outer);
            });
        });
        assert_eq!(Deadline::current(), Deadline::never());
    }

    #[test]
    fn ambient_binding_is_per_thread() {
        Deadline::within(Duration::from_secs(5)).scope(|| {
            let seen = std::thread::spawn(Deadline::current).join().unwrap();
            assert_eq!(seen, Deadline::never(), "fresh threads start unbounded");
        });
    }
}
