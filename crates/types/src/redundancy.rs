//! Parity-group framing for the redundancy plane.
//!
//! Deduplication concentrates risk: after reverse dedup one container can
//! hold the only copy of chunks referenced by many backup versions, so a
//! single corrupt object becomes loss for every version that points at it.
//! The redundancy plane re-introduces *controlled* redundancy: container
//! objects are protected either by a full replica (high-reference
//! containers) or by membership in an XOR parity group of `k` containers
//! (everything else), trading one parity block of max-member size for
//! single-fault reconstruction of any member.
//!
//! A [`ParityGroup`] manifest records the member keys and their exact
//! sealed lengths. Members are XOR-ed as their *sealed* on-OSS bytes
//! (payload plus CRC trailer), zero-padded to the longest member; a
//! reconstructed member is therefore self-verifying — its CRC trailer must
//! check out before it is trusted. The manifest and the parity block are
//! themselves CRC-sealed with the same [`crate::crc`] framing as every
//! other maintenance-written object.

use bytes::Bytes;

use crate::codec::{Reader, Writer};
use crate::crc;
use crate::error::Result;

/// Magic of the parity-group manifest encoding.
pub const GROUP_MAGIC: &[u8; 4] = b"SLRG";
/// Format version of the parity-group manifest encoding.
pub const GROUP_VERSION: u8 = 1;

/// One protected member of a parity group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMember {
    /// Primary OSS key of the member (e.g. `containers/…/data`).
    pub key: String,
    /// Exact sealed object length at seal time; reconstruction truncates
    /// the XOR result back to this length.
    pub len: u64,
}

/// A CRC-sealed manifest describing one XOR parity group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityGroup {
    /// Group id; names the manifest and parity-block keys.
    pub id: u64,
    /// Members, in the order they were XOR-ed.
    pub members: Vec<GroupMember>,
}

impl ParityGroup {
    /// Encode and CRC-seal the manifest.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_header(GROUP_MAGIC, GROUP_VERSION);
        w.u64(self.id);
        w.u32(self.members.len() as u32);
        for m in &self.members {
            w.string(&m.key);
            w.u64(m.len);
        }
        crc::seal(&w.freeze())
    }

    /// Unseal and decode a manifest.
    pub fn decode(buf: &Bytes) -> Result<ParityGroup> {
        let payload = crc::unseal(buf, "parity group manifest")?;
        let mut r = Reader::new(&payload, "parity group manifest");
        r.expect_header(GROUP_MAGIC, GROUP_VERSION)?;
        let id = r.u64()?;
        let count = r.u32()? as usize;
        let mut members = Vec::with_capacity(count);
        for _ in 0..count {
            let key = r.string()?;
            let len = r.u64()?;
            members.push(GroupMember { key, len });
        }
        r.finish()?;
        Ok(ParityGroup { id, members })
    }

    /// Length of the parity block: the longest member, zero-padded.
    pub fn parity_len(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.len as usize)
            .max()
            .unwrap_or(0)
    }

    /// The member protecting `key`, if any.
    pub fn member(&self, key: &str) -> Option<&GroupMember> {
        self.members.iter().find(|m| m.key == key)
    }
}

/// XOR `src` into `acc`, growing `acc` with zero padding as needed.
pub fn xor_into(acc: &mut Vec<u8>, src: &[u8]) {
    if acc.len() < src.len() {
        acc.resize(src.len(), 0);
    }
    for (a, b) in acc.iter_mut().zip(src) {
        *a ^= b;
    }
}

/// XOR parity block of a set of member objects.
pub fn parity_of<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut acc = Vec::new();
    for p in parts {
        xor_into(&mut acc, p);
    }
    acc
}

/// Reconstruct one missing member of `len` bytes from the parity block and
/// every *other* member.
pub fn reconstruct_member<'a>(
    parity: &[u8],
    others: impl IntoIterator<Item = &'a [u8]>,
    len: usize,
) -> Vec<u8> {
    let mut acc = parity.to_vec();
    for p in others {
        xor_into(&mut acc, p);
    }
    acc.truncate(len);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> ParityGroup {
        ParityGroup {
            id: 7,
            members: vec![
                GroupMember {
                    key: "containers/000000000001/data".into(),
                    len: 10,
                },
                GroupMember {
                    key: "containers/000000000002/data".into(),
                    len: 4,
                },
                GroupMember {
                    key: "containers/000000000005/data".into(),
                    len: 7,
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let g = group();
        let buf = g.encode();
        let back = ParityGroup::decode(&buf).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.parity_len(), 10);
        assert!(back.member("containers/000000000002/data").is_some());
        assert!(back.member("containers/000000000009/data").is_none());
    }

    #[test]
    fn manifest_corruption_detected() {
        let buf = group().encode();
        for i in 0..buf.len() {
            let mut bad = buf.to_vec();
            bad[i] ^= 0x40;
            assert!(
                ParityGroup::decode(&Bytes::from(bad)).is_err(),
                "flip at {i} must be detected"
            );
        }
    }

    #[test]
    fn any_single_member_reconstructs() {
        let members: Vec<Vec<u8>> = vec![
            b"aaaaaaaaaa".to_vec(),
            b"bbbb".to_vec(),
            b"ccccccc".to_vec(),
        ];
        let parity = parity_of(members.iter().map(|m| m.as_slice()));
        assert_eq!(parity.len(), 10);
        for lost in 0..members.len() {
            let others = members
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, m)| m.as_slice());
            let back = reconstruct_member(&parity, others, members[lost].len());
            assert_eq!(back, members[lost], "member {lost}");
        }
    }

    #[test]
    fn singleton_group_parity_is_a_copy() {
        let only = b"solo member".to_vec();
        let parity = parity_of([only.as_slice()]);
        assert_eq!(parity, only);
        let back = reconstruct_member(&parity, [], only.len());
        assert_eq!(back, only);
    }
}
