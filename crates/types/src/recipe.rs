//! Recipes — the logical chunk sequence of one backup file version.
//!
//! A recipe is the sequence of [`ChunkRecord`]s describing how to reassemble
//! a file (§III-B). Consecutive chunks are grouped into *segments*; the
//! corresponding runs of records are *segment recipes*, which are the unit of
//! prefetching during deduplication. The encoding keeps every segment block
//! independently decodable and records its byte span, so an L-node can fetch
//! a single similar segment with one OSS range read instead of downloading
//! the whole recipe.
//!
//! The [`RecipeIndex`] maps each segment's representative (sampled)
//! fingerprints to that segment's byte span, exactly as described in §III-B.

use serde::{Deserialize, Serialize};

use crate::chunk::ChunkRecord;
use crate::codec::{Reader, Writer};
use crate::error::{Result, SlimError};
use crate::fingerprint::Fingerprint;

const RECIPE_MAGIC: &[u8; 4] = b"SLRC";
const RECIPE_VERSION: u8 = 1;
const SEGMENT_MAGIC: &[u8; 4] = b"SLSG";
const INDEX_MAGIC: &[u8; 4] = b"SLRI";
const INDEX_VERSION: u8 = 1;

/// The records of one segment of a backup file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SegmentRecipe {
    /// Chunk records in logical (file) order.
    pub records: Vec<ChunkRecord>,
}

impl SegmentRecipe {
    /// A segment recipe over the given records.
    pub fn new(records: Vec<ChunkRecord>) -> Self {
        SegmentRecipe { records }
    }

    /// Logical bytes covered by this segment.
    pub fn logical_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size as u64).sum()
    }

    /// Encode as a standalone block (decodable without the recipe header).
    pub fn encode_block(&self) -> bytes::Bytes {
        let mut w = Writer::new();
        w.u32(u32::from_le_bytes(*SEGMENT_MAGIC));
        w.u32(self.records.len() as u32);
        for rec in &self.records {
            rec.encode(&mut w);
        }
        w.freeze()
    }

    /// Decode a standalone block produced by [`SegmentRecipe::encode_block`].
    pub fn decode_block(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "segment recipe");
        let magic = r.u32()?;
        if magic != u32::from_le_bytes(*SEGMENT_MAGIC) {
            return Err(SlimError::corrupt("segment recipe", "bad segment magic"));
        }
        let n = r.u32()? as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(ChunkRecord::decode(&mut r)?);
        }
        r.finish()?;
        Ok(SegmentRecipe { records })
    }
}

/// Byte span of one encoded segment block within a recipe object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSpan {
    /// Offset of the block within the recipe object.
    pub offset: u64,
    /// Length of the block in bytes.
    pub len: u64,
}

/// The full recipe of one backup file version.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Recipe {
    /// Segment recipes in logical order.
    pub segments: Vec<SegmentRecipe>,
}

impl Recipe {
    /// An empty recipe.
    pub fn new() -> Self {
        Recipe::default()
    }

    /// Total logical size of the file described by this recipe.
    pub fn logical_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.logical_bytes()).sum()
    }

    /// Total number of chunk records.
    pub fn record_count(&self) -> usize {
        self.segments.iter().map(|s| s.records.len()).sum()
    }

    /// Iterate over all chunk records in logical order.
    pub fn records(&self) -> impl Iterator<Item = &ChunkRecord> {
        self.segments.iter().flat_map(|s| s.records.iter())
    }

    /// Encode to the OSS wire format, returning the object bytes and the
    /// byte span of each segment block (for building the recipe index).
    ///
    /// Layout: header | u32 segment-count | blocks... — each block is a
    /// standalone [`SegmentRecipe::encode_block`] so that a range read of one
    /// span decodes independently.
    pub fn encode(&self) -> (bytes::Bytes, Vec<SegmentSpan>) {
        let mut w = Writer::with_header(RECIPE_MAGIC, RECIPE_VERSION);
        w.u32(self.segments.len() as u32);
        let mut body: Vec<bytes::Bytes> = Vec::with_capacity(self.segments.len());
        let mut spans = Vec::with_capacity(self.segments.len());
        let mut offset = w.len() as u64;
        for seg in &self.segments {
            let block = seg.encode_block();
            spans.push(SegmentSpan {
                offset,
                len: block.len() as u64,
            });
            offset += block.len() as u64;
            body.push(block);
        }
        let mut out = bytes::BytesMut::from(&w.freeze()[..]);
        for block in body {
            out.extend_from_slice(&block);
        }
        (out.freeze(), spans)
    }

    /// Decode a full recipe object.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "recipe");
        r.expect_header(RECIPE_MAGIC, RECIPE_VERSION)?;
        let n = r.u32()? as usize;
        drop(r);
        let mut segments = Vec::with_capacity(n);
        // Re-walk the blocks: each block is self-delimiting, so decode
        // sequentially from the header end.
        let mut pos = 4 + 1 + 4; // magic + version + count
        for _ in 0..n {
            let (seg, used) = decode_block_at(buf, pos)?;
            segments.push(seg);
            pos += used;
        }
        if pos != buf.len() {
            return Err(SlimError::corrupt(
                "recipe",
                format!("{} trailing bytes", buf.len() - pos),
            ));
        }
        Ok(Recipe { segments })
    }
}

/// Decode the segment block starting at `pos`, returning it and its encoded
/// length.
fn decode_block_at(buf: &[u8], pos: usize) -> Result<(SegmentRecipe, usize)> {
    let rest = buf
        .get(pos..)
        .ok_or_else(|| SlimError::corrupt("recipe", "segment offset out of bounds"))?;
    // A block has no explicit length; decode records to find the end.
    let mut r = Reader::new(rest, "segment recipe");
    let magic = r.u32()?;
    if magic != u32::from_le_bytes(*SEGMENT_MAGIC) {
        return Err(SlimError::corrupt("recipe", "bad segment magic in stream"));
    }
    let n = r.u32()? as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(ChunkRecord::decode(&mut r)?);
    }
    let used = rest.len() - r.remaining();
    Ok((SegmentRecipe { records }, used))
}

/// One entry of a recipe index: a representative fingerprint of a segment
/// mapped to the byte span of that segment's recipe block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecipeIndexEntry {
    /// Sampled representative fingerprint.
    pub sample_fp: Fingerprint,
    /// Ordinal of the segment within the file.
    pub segment_idx: u32,
    /// Where the segment recipe block lives inside the recipe object.
    pub span: SegmentSpan,
}

/// The recipe index of one backup file version (§III-B).
///
/// Built at backup time from the sampled fingerprints of each segment; used
/// by the next version's dedup job to locate similar segment recipes with a
/// single lookup plus one OSS range read.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecipeIndex {
    /// All sampled entries, in segment order.
    pub entries: Vec<RecipeIndexEntry>,
}

impl RecipeIndex {
    /// An empty index.
    pub fn new() -> Self {
        RecipeIndex::default()
    }

    /// Build the index for a recipe from its encoded segment spans.
    ///
    /// Sampling rules (shared by the L-node and the G-node's SCC rewrite):
    /// * a record's sample key is its fingerprint — except superchunks,
    ///   which are keyed by their *first member* chunk (the only
    ///   CDC-reproducible fingerprint, required by Algorithm 1);
    /// * superchunk records are always indexed, plain records when their
    ///   key passes `fp mod sample_rate == 0`;
    /// * the *first* record of every segment is always indexed: it anchors
    ///   sequential chaining deterministically, and for small files it
    ///   guarantees an unchanged head finds its history even when random
    ///   sampling selected nothing stable (e.g. only a tail chunk that the
    ///   next version appends to).
    pub fn build(recipe: &Recipe, spans: &[SegmentSpan], sample_rate: u64) -> RecipeIndex {
        assert_eq!(
            spans.len(),
            recipe.segments.len(),
            "spans from this recipe's encode()"
        );
        let key_of = |rec: &ChunkRecord| match &rec.super_chunk {
            Some(sc) => sc.first_chunk,
            None => rec.fp,
        };
        let mut index = RecipeIndex::new();
        for (seg_idx, seg) in recipe.segments.iter().enumerate() {
            for (rec_idx, rec) in seg.records.iter().enumerate() {
                let key = key_of(rec);
                if rec_idx == 0 || key.is_sample(sample_rate) || rec.is_super() {
                    index.push(RecipeIndexEntry {
                        sample_fp: key,
                        segment_idx: seg_idx as u32,
                        span: spans[seg_idx],
                    });
                }
            }
        }
        index
    }

    /// Append an entry.
    pub fn push(&mut self, entry: RecipeIndexEntry) {
        self.entries.push(entry);
    }

    /// Look up all spans whose sample matches `fp`.
    pub fn lookup<'a>(
        &'a self,
        fp: &'a Fingerprint,
    ) -> impl Iterator<Item = &'a RecipeIndexEntry> + 'a {
        self.entries.iter().filter(move |e| e.sample_fp == *fp)
    }

    /// Encode to the OSS wire format.
    pub fn encode(&self) -> bytes::Bytes {
        let mut w = Writer::with_header(INDEX_MAGIC, INDEX_VERSION);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.fingerprint(&e.sample_fp);
            w.u32(e.segment_idx);
            w.u64(e.span.offset);
            w.u64(e.span.len);
        }
        w.freeze()
    }

    /// Decode from the OSS wire format.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "recipe index");
        r.expect_header(INDEX_MAGIC, INDEX_VERSION)?;
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(RecipeIndexEntry {
                sample_fp: r.fingerprint()?,
                segment_idx: r.u32()?,
                span: SegmentSpan {
                    offset: r.u64()?,
                    len: r.u64()?,
                },
            });
        }
        r.finish()?;
        Ok(RecipeIndex { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerId;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn rec(b: u8, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp(b), ContainerId(b as u64), size, 0)
    }

    fn sample_recipe() -> Recipe {
        Recipe {
            segments: vec![
                SegmentRecipe::new(vec![rec(1, 100), rec(2, 200)]),
                SegmentRecipe::new(vec![rec(3, 300)]),
                SegmentRecipe::new(vec![]),
            ],
        }
    }

    #[test]
    fn recipe_roundtrip() {
        let recipe = sample_recipe();
        let (buf, spans) = recipe.encode();
        assert_eq!(spans.len(), 3);
        let back = Recipe::decode(&buf).unwrap();
        assert_eq!(back, recipe);
        assert_eq!(back.logical_bytes(), 600);
        assert_eq!(back.record_count(), 3);
    }

    #[test]
    fn segment_spans_support_range_decoding() {
        let recipe = sample_recipe();
        let (buf, spans) = recipe.encode();
        for (i, span) in spans.iter().enumerate() {
            let block = &buf[span.offset as usize..(span.offset + span.len) as usize];
            let seg = SegmentRecipe::decode_block(block).unwrap();
            assert_eq!(seg, recipe.segments[i]);
        }
    }

    #[test]
    fn recipe_decode_rejects_corruption() {
        let (buf, _) = sample_recipe().encode();
        let mut bad = buf.to_vec();
        bad[6] ^= 0xff; // inside segment count / first block magic
        assert!(Recipe::decode(&bad).is_err());
        assert!(Recipe::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn recipe_index_roundtrip_and_lookup() {
        let mut idx = RecipeIndex::new();
        idx.push(RecipeIndexEntry {
            sample_fp: fp(1),
            segment_idx: 0,
            span: SegmentSpan { offset: 9, len: 50 },
        });
        idx.push(RecipeIndexEntry {
            sample_fp: fp(1),
            segment_idx: 2,
            span: SegmentSpan {
                offset: 100,
                len: 30,
            },
        });
        idx.push(RecipeIndexEntry {
            sample_fp: fp(2),
            segment_idx: 1,
            span: SegmentSpan {
                offset: 59,
                len: 41,
            },
        });
        let buf = idx.encode();
        let back = RecipeIndex::decode(&buf).unwrap();
        assert_eq!(back, idx);
        let fp1 = fp(1);
        let hits: Vec<_> = back.lookup(&fp1).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].segment_idx, 0);
        assert_eq!(hits[1].segment_idx, 2);
        let fp9 = fp(9);
        assert_eq!(back.lookup(&fp9).count(), 0);
    }

    #[test]
    fn empty_recipe_roundtrip() {
        let recipe = Recipe::new();
        let (buf, spans) = recipe.encode();
        assert!(spans.is_empty());
        let back = Recipe::decode(&buf).unwrap();
        assert_eq!(back.record_count(), 0);
    }
}
