//! Chunk records — the entries of a recipe.
//!
//! Each record is the quadruple ⟨fp, containerID, size, duplicateTimes⟩ from
//! §III-B of the paper, extended with the superchunk metadata of §IV-C:
//! a superchunk record additionally stores the fingerprint and size of its
//! *first* member chunk (`firstChunk`), which is how later versions detect a
//! candidate superchunk match (Algorithm 1).

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::container::ContainerId;
use crate::error::Result;
use crate::fingerprint::Fingerprint;

/// Metadata identifying a superchunk (a run of merged chunks, §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperChunkInfo {
    /// Fingerprint of the first member chunk; a CDC chunk matching this
    /// fingerprint triggers the SuperChunking probe of Algorithm 1.
    pub first_chunk: Fingerprint,
    /// Size in bytes of the first member chunk.
    pub first_chunk_size: u32,
    /// How many CDC chunks were merged into this superchunk.
    pub member_count: u32,
}

/// One entry in a recipe: where one logical chunk of the backup file lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// SHA-1 fingerprint of the chunk payload.
    pub fp: Fingerprint,
    /// Container holding the payload at the time the recipe was written.
    /// (Reverse deduplication may later relocate the payload; the global
    /// index is the authority in that case, §VI-A.)
    pub container_id: ContainerId,
    /// Payload size in bytes.
    pub size: u32,
    /// How many historical versions confirmed this chunk as a duplicate
    /// (drives history-aware chunk merging, §IV-C).
    pub duplicate_times: u32,
    /// Present iff this record describes a superchunk.
    pub super_chunk: Option<SuperChunkInfo>,
}

impl ChunkRecord {
    /// A plain (non-super) chunk record.
    pub fn new(
        fp: Fingerprint,
        container_id: ContainerId,
        size: u32,
        duplicate_times: u32,
    ) -> Self {
        ChunkRecord {
            fp,
            container_id,
            size,
            duplicate_times,
            super_chunk: None,
        }
    }

    /// Whether this record describes a superchunk.
    pub fn is_super(&self) -> bool {
        self.super_chunk.is_some()
    }

    /// Encode into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.fingerprint(&self.fp);
        w.u64(self.container_id.0);
        w.u32(self.size);
        w.u32(self.duplicate_times);
        match &self.super_chunk {
            None => {
                w.u8(0);
            }
            Some(sc) => {
                w.u8(1);
                w.fingerprint(&sc.first_chunk);
                w.u32(sc.first_chunk_size);
                w.u32(sc.member_count);
            }
        }
    }

    /// Decode from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let fp = r.fingerprint()?;
        let container_id = ContainerId(r.u64()?);
        let size = r.u32()?;
        let duplicate_times = r.u32()?;
        let super_chunk = match r.u8()? {
            0 => None,
            _ => Some(SuperChunkInfo {
                first_chunk: r.fingerprint()?,
                first_chunk_size: r.u32()?,
                member_count: r.u32()?,
            }),
        };
        Ok(ChunkRecord {
            fp,
            container_id,
            size,
            duplicate_times,
            super_chunk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    #[test]
    fn roundtrip_plain() {
        let rec = ChunkRecord::new(fp(1), ContainerId(42), 4096, 3);
        let mut w = Writer::new();
        rec.encode(&mut w);
        let buf = w.freeze();
        let mut r = Reader::new(&buf, "chunk record");
        let back = ChunkRecord::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, rec);
        assert!(!back.is_super());
    }

    #[test]
    fn roundtrip_super() {
        let rec = ChunkRecord {
            fp: fp(2),
            container_id: ContainerId(7),
            size: 128 * 1024,
            duplicate_times: 9,
            super_chunk: Some(SuperChunkInfo {
                first_chunk: fp(3),
                first_chunk_size: 4096,
                member_count: 17,
            }),
        };
        let mut w = Writer::new();
        rec.encode(&mut w);
        let buf = w.freeze();
        let mut r = Reader::new(&buf, "chunk record");
        let back = ChunkRecord::decode(&mut r).unwrap();
        assert_eq!(back, rec);
        assert!(back.is_super());
    }

    #[test]
    fn decode_truncated_fails() {
        let rec = ChunkRecord::new(fp(1), ContainerId(1), 1, 0);
        let mut w = Writer::new();
        rec.encode(&mut w);
        let buf = w.freeze();
        let mut r = Reader::new(&buf[..buf.len() - 1], "chunk record");
        assert!(ChunkRecord::decode(&mut r).is_err());
    }
}
