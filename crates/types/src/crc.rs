//! Per-object CRC32 framing.
//!
//! Containers, container metadata, SSTables and G-node journal records are
//! the objects that maintenance rewrites in place on OSS; a crash or a
//! bit-flip there must never decode as plausible garbage. Every such object
//! carries an 8-byte trailer — a 4-byte magic plus the little-endian IEEE
//! CRC32 of the payload — appended *after* the payload so that offset-based
//! range reads (restore's container range reads, segment-recipe reads) are
//! unaffected: payload byte `i` still lives at object offset `i`.
//!
//! The polynomial is hand-rolled (reflected 0xEDB88320, the zlib/PNG/IEEE
//! 802.3 CRC) so the crate stays dependency-free.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::{Result, SlimError};

/// Magic prefix of the checksum trailer.
pub const CRC_MAGIC: &[u8; 4] = b"SLCK";
/// Total trailer size: magic + little-endian CRC32.
pub const CRC_TRAILER_LEN: usize = 8;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// IEEE CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append the checksum trailer to `payload`, producing the framed object.
pub fn seal(payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + CRC_TRAILER_LEN);
    buf.put_slice(payload);
    buf.put_slice(CRC_MAGIC);
    buf.put_u32_le(crc32(payload));
    buf.freeze()
}

/// Validate the trailer of a framed object and return the payload length.
///
/// `what` names the object kind in [`SlimError::Corrupt`] reports. Errors if
/// the object is too short to carry a trailer, the magic is absent
/// (truncated or mis-framed object), or the checksum does not match the
/// payload (bit rot / torn write).
pub fn verified_payload_len(buf: &[u8], what: &'static str) -> Result<usize> {
    if buf.len() < CRC_TRAILER_LEN {
        return Err(SlimError::corrupt(
            what,
            format!(
                "object of {} bytes cannot carry a checksum trailer",
                buf.len()
            ),
        ));
    }
    let payload_len = buf.len() - CRC_TRAILER_LEN;
    let trailer = &buf[payload_len..];
    if &trailer[..4] != CRC_MAGIC {
        return Err(SlimError::corrupt(
            what,
            format!("missing checksum trailer magic {:02x?}", &trailer[..4]),
        ));
    }
    let stored = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes"));
    let actual = crc32(&buf[..payload_len]);
    if stored != actual {
        return Err(SlimError::corrupt(
            what,
            format!("checksum mismatch: stored {stored:08x}, computed {actual:08x}"),
        ));
    }
    Ok(payload_len)
}

/// Validate the trailer and return the payload as a copy-free sub-slice of
/// the shared buffer.
pub fn unseal(buf: &Bytes, what: &'static str) -> Result<Bytes> {
    let n = verified_payload_len(buf, what)?;
    Ok(buf.slice(..n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"container payload bytes".as_slice();
        let framed = seal(payload);
        assert_eq!(framed.len(), payload.len() + CRC_TRAILER_LEN);
        // Payload offsets are preserved: byte i of the payload is byte i of
        // the framed object (range reads stay valid).
        assert_eq!(&framed[..payload.len()], payload);
        let back = unseal(&framed, "test").unwrap();
        assert_eq!(&back[..], payload);
    }

    #[test]
    fn empty_payload_frames() {
        let framed = seal(b"");
        assert_eq!(framed.len(), CRC_TRAILER_LEN);
        assert_eq!(unseal(&framed, "test").unwrap().len(), 0);
    }

    #[test]
    fn bit_flip_detected_anywhere() {
        let framed = seal(b"some payload worth protecting");
        for i in 0..framed.len() {
            let mut bad = framed.to_vec();
            bad[i] ^= 0x01;
            let err = verified_payload_len(&bad, "test").unwrap_err();
            assert!(
                matches!(err, SlimError::Corrupt { .. }),
                "flip at {i} must be detected"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let framed = seal(b"0123456789abcdef");
        for cut in 0..framed.len() {
            let err = verified_payload_len(&framed[..cut], "test").unwrap_err();
            assert!(matches!(err, SlimError::Corrupt { .. }), "cut at {cut}");
        }
    }

    #[test]
    fn unframed_object_rejected() {
        // A legacy/foreign object without the trailer magic must be refused
        // rather than silently mis-sliced.
        let raw = vec![0xAAu8; 64];
        assert!(verified_payload_len(&raw, "test").is_err());
    }
}
