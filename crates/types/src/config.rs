//! System configuration.
//!
//! Every tunable the paper names, with the paper's default values. The
//! experiment harnesses sweep these; the library validates them once at
//! construction so the hot paths can assume sane values.

use serde::{Deserialize, Serialize};

use crate::error::{Result, SlimError};

/// Configuration for a SLIMSTORE deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlimConfig {
    /// Minimum CDC chunk size in bytes (cut points below this are ignored).
    pub min_chunk_size: usize,
    /// Target (average/expected) CDC chunk size in bytes. The paper's default
    /// online configuration is 4 KB (§IV-C, §VII-B).
    pub avg_chunk_size: usize,
    /// Maximum CDC chunk size in bytes (forced cut).
    pub max_chunk_size: usize,

    /// Number of consecutive chunks that form a segment (§III-B). Segments
    /// are the unit of recipe prefetching and of sampling.
    pub segment_chunks: usize,

    /// Sampling rate `R`: a fingerprint is representative iff
    /// `fp mod R == 0` (§IV-A Step 1).
    pub sample_rate: u64,

    /// Number of representative fingerprints kept per file in the similar
    /// file index (header sampling for large files, §IV-A).
    pub similar_index_samples: usize,

    /// Container capacity in bytes; when a container reaches this it is
    /// sealed and persisted to OSS (§IV-A Step 3).
    pub container_capacity: usize,

    /// `duplicateTimes` threshold at which consecutive duplicate chunks are
    /// merged into a superchunk (§IV-C; the paper's experiments use 5).
    pub merge_threshold: u32,
    /// Minimum run length (in chunks) worth merging into a superchunk:
    /// short runs cost a payload re-store without meaningfully shrinking the
    /// recipe, so only runs of at least this many chunks merge.
    pub superchunk_min_members: usize,
    /// Maximum number of member chunks merged into one superchunk.
    pub superchunk_max_members: usize,
    /// Whether history-aware chunk merging is enabled.
    pub chunk_merging: bool,
    /// Whether history-aware skip chunking is enabled (§IV-B).
    pub skip_chunking: bool,

    /// Container utilization below which a container is recorded as *sparse*
    /// for the current backup (§V-B; paper example 30 %).
    pub sparse_utilization_threshold: f64,
    /// Fraction of deleted chunks above which a container is physically
    /// rewritten by the G-node (§VI-A; paper example 20 %).
    pub container_rewrite_threshold: f64,

    /// Look-ahead window length, in chunk records, used by LAW prefetching
    /// and the restore caches (§V-A).
    pub law_window: usize,
    /// Capacity of the in-memory restore cache tier (`Cache_m`) in bytes.
    pub restore_cache_mem: usize,
    /// Capacity of the on-disk restore cache tier (`Cache_d`) in bytes.
    pub restore_cache_disk: usize,
    /// Number of background prefetch threads for LAW-based prefetching
    /// (Table II; 6 saturates in the paper).
    pub prefetch_threads: usize,

    /// Whether the unified telemetry subsystem is wired up: when true the
    /// store registers component scopes (`oss`, `rocks`, `lnode.<id>`,
    /// `gnode`) in a shared metric registry and every pipeline phase emits
    /// spans. The hot-path cost is a handful of relaxed atomic adds per job.
    #[serde(default = "default_telemetry")]
    pub telemetry: bool,

    /// Whether the dedup-aware redundancy plane is active: container objects
    /// are protected by replicas or XOR parity groups, reads self-heal from
    /// them, and the G-node re-tiers protection each maintenance cycle.
    #[serde(default = "default_redundancy")]
    pub redundancy: bool,
    /// Number of live global-index entries (authoritative chunk copies) at or
    /// above which a container's data object is protected by a full replica
    /// instead of parity-only. Deduplication concentrates risk in exactly
    /// these containers: many versions depend on their chunks.
    #[serde(default = "default_redundancy_replica_refs")]
    pub redundancy_replica_refs: u64,
    /// Number of container data objects XOR-ed together into one parity
    /// group (the `k` of k+1 erasure coding; any single member is
    /// reconstructible from the other k-1 plus the parity block).
    #[serde(default = "default_parity_group_size")]
    pub parity_group_size: usize,

    /// Whether chunk payloads are LZ-compressed (per entry, independently)
    /// when containers are built, stored raw when not strictly smaller.
    /// Container boundaries — and therefore every dedup statistic — are
    /// invariant under this knob; only stored/transferred bytes shrink.
    /// G-node rewrites recompress (or decompress) as they rewrite, so
    /// flipping the knob converges existing repositories over time.
    #[serde(default = "default_compression")]
    pub compression: bool,

    /// Thread budget for the pipelined parallel backup plane, *per backup
    /// job*. `0` or `1` runs the classic single-threaded path; `>= 2`
    /// splits a job into chunking-feed, fingerprint-worker, in-order dedup
    /// and async-upload stages (one feeder + one uploader + the remainder
    /// as fingerprint workers). Output is byte-identical to the sequential
    /// path — only wall-clock and pipeline telemetry differ.
    #[serde(default = "default_backup_pipeline_threads")]
    pub backup_pipeline_threads: usize,

    /// Whether idempotent reads (GET / range GET / HEAD and their batched
    /// forms) go through the gray-failure hedging plane: a backup request
    /// is issued to a second endpoint after a quantile-derived delay and
    /// the first success wins. Only effective when the deployment's object
    /// store exposes more than one endpoint (`oss_endpoints >= 2`); with a
    /// single endpoint the plane is a pass-through that still scores
    /// endpoint health.
    #[serde(default = "default_hedged_reads")]
    pub hedged_reads: bool,
    /// Number of simulated OSS endpoints (independent request-routing
    /// targets) the internally built store spreads requests over. Hedging
    /// and the per-endpoint circuit breakers need at least 2 to have an
    /// alternative to route to. Ignored for externally attached stores.
    #[serde(default = "default_oss_endpoints")]
    pub oss_endpoints: usize,
    /// Attempt budget of the retry wrapper the builder wires outermost
    /// around the store stack. `0` (the default) wires no retry layer —
    /// fault-handling stays exactly where each caller put it; `>= 1` wraps
    /// the stack in a `RetryingStore` with this many attempts and a
    /// per-wrapper salted jitter seed.
    #[serde(default = "default_retry_attempts")]
    pub retry_attempts: u32,
}

fn default_telemetry() -> bool {
    true
}

fn default_redundancy() -> bool {
    true
}

fn default_redundancy_replica_refs() -> u64 {
    64
}

fn default_parity_group_size() -> usize {
    4
}

fn default_compression() -> bool {
    true
}

fn default_backup_pipeline_threads() -> usize {
    4
}

fn default_hedged_reads() -> bool {
    true
}

fn default_oss_endpoints() -> usize {
    4
}

fn default_retry_attempts() -> u32 {
    0
}

impl Default for SlimConfig {
    fn default() -> Self {
        SlimConfig {
            min_chunk_size: 1024,
            avg_chunk_size: 4 * 1024,
            max_chunk_size: 16 * 1024,
            segment_chunks: 128,
            sample_rate: 32,
            similar_index_samples: 16,
            container_capacity: 4 * 1024 * 1024,
            merge_threshold: 5,
            superchunk_min_members: 8,
            superchunk_max_members: 32,
            chunk_merging: true,
            skip_chunking: true,
            sparse_utilization_threshold: 0.30,
            container_rewrite_threshold: 0.20,
            law_window: 2048,
            restore_cache_mem: 64 * 1024 * 1024,
            restore_cache_disk: 256 * 1024 * 1024,
            prefetch_threads: 6,
            telemetry: true,
            redundancy: true,
            redundancy_replica_refs: 64,
            parity_group_size: 4,
            compression: true,
            backup_pipeline_threads: default_backup_pipeline_threads(),
            hedged_reads: true,
            oss_endpoints: default_oss_endpoints(),
            retry_attempts: 0,
        }
    }
}

impl SlimConfig {
    /// A configuration scaled down for unit tests: small chunks, small
    /// containers, small segments, so a few megabytes of input exercise all
    /// code paths (sealed containers, multi-segment recipes, sparse
    /// containers, superchunks).
    pub fn small_for_tests() -> Self {
        SlimConfig {
            min_chunk_size: 64,
            avg_chunk_size: 256,
            max_chunk_size: 1024,
            segment_chunks: 16,
            sample_rate: 4,
            similar_index_samples: 8,
            container_capacity: 8 * 1024,
            merge_threshold: 3,
            superchunk_min_members: 2,
            superchunk_max_members: 8,
            chunk_merging: true,
            skip_chunking: true,
            sparse_utilization_threshold: 0.30,
            container_rewrite_threshold: 0.20,
            law_window: 64,
            restore_cache_mem: 64 * 1024,
            restore_cache_disk: 256 * 1024,
            prefetch_threads: 2,
            telemetry: true,
            redundancy: true,
            redundancy_replica_refs: 8,
            parity_group_size: 3,
            // Off by default so byte-level unit tests see stored == raw
            // sizes; the compressed paths are exercised explicitly by
            // `tests/compression.rs` via `with_compression(true)`.
            compression: false,
            // Sequential by default: byte-level unit tests stay on the
            // classic path; the pipeline is exercised explicitly by the
            // equivalence suite in `tests/pipeline_backup.rs`.
            backup_pipeline_threads: 0,
            // Hedging is on but inert on the instant network unit tests use
            // (the plane only engages once observed latency clears its
            // activation floor), so counters stay byte-identical to the
            // unhedged path; the chaos suite in `tests/hedging.rs` exercises
            // it explicitly under latency-bearing models.
            hedged_reads: true,
            oss_endpoints: 2,
            retry_attempts: 0,
        }
    }

    /// Validate invariants the hot paths rely on.
    pub fn validate(&self) -> Result<()> {
        if self.min_chunk_size == 0 {
            return Err(SlimError::InvalidConfig(
                "min_chunk_size must be > 0".into(),
            ));
        }
        if !(self.min_chunk_size <= self.avg_chunk_size
            && self.avg_chunk_size <= self.max_chunk_size)
        {
            return Err(SlimError::InvalidConfig(format!(
                "chunk sizes must satisfy min <= avg <= max, got {} <= {} <= {}",
                self.min_chunk_size, self.avg_chunk_size, self.max_chunk_size
            )));
        }
        if !self.avg_chunk_size.is_power_of_two() {
            return Err(SlimError::InvalidConfig(format!(
                "avg_chunk_size must be a power of two for CDC masks, got {}",
                self.avg_chunk_size
            )));
        }
        if self.segment_chunks == 0 {
            return Err(SlimError::InvalidConfig(
                "segment_chunks must be > 0".into(),
            ));
        }
        if self.container_capacity < self.max_chunk_size {
            return Err(SlimError::InvalidConfig(format!(
                "container_capacity ({}) must hold at least one max-size chunk ({})",
                self.container_capacity, self.max_chunk_size
            )));
        }
        if self.superchunk_max_members < 2 {
            return Err(SlimError::InvalidConfig(
                "superchunk_max_members must be >= 2".into(),
            ));
        }
        if !(2..=self.superchunk_max_members).contains(&self.superchunk_min_members) {
            return Err(SlimError::InvalidConfig(format!(
                "superchunk_min_members must be within [2, max], got {}",
                self.superchunk_min_members
            )));
        }
        for (name, v) in [
            (
                "sparse_utilization_threshold",
                self.sparse_utilization_threshold,
            ),
            (
                "container_rewrite_threshold",
                self.container_rewrite_threshold,
            ),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SlimError::InvalidConfig(format!(
                    "{name} must be within [0, 1], got {v}"
                )));
            }
        }
        if self.law_window == 0 {
            return Err(SlimError::InvalidConfig("law_window must be > 0".into()));
        }
        if self.restore_cache_mem == 0 {
            return Err(SlimError::InvalidConfig(
                "restore_cache_mem must be > 0".into(),
            ));
        }
        if self.redundancy && self.parity_group_size == 0 {
            return Err(SlimError::InvalidConfig(
                "parity_group_size must be > 0 when redundancy is enabled".into(),
            ));
        }
        if self.backup_pipeline_threads > 256 {
            return Err(SlimError::InvalidConfig(format!(
                "backup_pipeline_threads must be <= 256, got {}",
                self.backup_pipeline_threads
            )));
        }
        if !(1..=64).contains(&self.oss_endpoints) {
            return Err(SlimError::InvalidConfig(format!(
                "oss_endpoints must be within [1, 64], got {}",
                self.oss_endpoints
            )));
        }
        if self.retry_attempts > 100 {
            return Err(SlimError::InvalidConfig(format!(
                "retry_attempts must be <= 100, got {}",
                self.retry_attempts
            )));
        }
        Ok(())
    }

    /// Builder-style toggle for the redundancy plane.
    pub fn with_redundancy(mut self, on: bool) -> Self {
        self.redundancy = on;
        self
    }

    /// Builder-style override of the chunk-size triple, keeping the
    /// conventional min = avg/4, max = avg*4 spread used in CDC literature.
    pub fn with_avg_chunk_size(mut self, avg: usize) -> Self {
        self.avg_chunk_size = avg;
        self.min_chunk_size = (avg / 4).max(1);
        self.max_chunk_size = avg * 4;
        self
    }

    /// Builder-style toggle for skip chunking.
    pub fn with_skip_chunking(mut self, on: bool) -> Self {
        self.skip_chunking = on;
        self
    }

    /// Builder-style toggle for chunk merging.
    pub fn with_chunk_merging(mut self, on: bool) -> Self {
        self.chunk_merging = on;
        self
    }

    /// Builder-style toggle for per-chunk container compression.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Builder-style backup-pipeline thread budget (0 = sequential).
    pub fn with_backup_pipeline_threads(mut self, threads: usize) -> Self {
        self.backup_pipeline_threads = threads;
        self
    }

    /// Builder-style toggle for the hedged-read plane.
    pub fn with_hedged_reads(mut self, on: bool) -> Self {
        self.hedged_reads = on;
        self
    }

    /// Builder-style endpoint count for the internally built store.
    pub fn with_oss_endpoints(mut self, endpoints: usize) -> Self {
        self.oss_endpoints = endpoints;
        self
    }

    /// Builder-style retry-wrapper attempt budget (0 = no retry layer).
    pub fn with_retry_attempts(mut self, attempts: u32) -> Self {
        self.retry_attempts = attempts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SlimConfig::default().validate().unwrap();
        SlimConfig::small_for_tests().validate().unwrap();
    }

    #[test]
    fn rejects_inverted_chunk_sizes() {
        let mut cfg = SlimConfig::default();
        cfg.min_chunk_size = cfg.max_chunk_size + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_non_power_of_two_avg() {
        let mut cfg = SlimConfig::default();
        cfg.avg_chunk_size = 5000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_tiny_container() {
        let mut cfg = SlimConfig::default();
        cfg.container_capacity = cfg.max_chunk_size - 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_out_of_range_thresholds() {
        let mut cfg = SlimConfig::default();
        cfg.sparse_utilization_threshold = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = SlimConfig::default();
        cfg.container_rewrite_threshold = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_parity_group() {
        let mut cfg = SlimConfig::default();
        cfg.parity_group_size = 0;
        assert!(cfg.validate().is_err());
        // Harmless when the redundancy plane is off.
        cfg.redundancy = false;
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_absurd_pipeline_thread_budget() {
        let cfg = SlimConfig::default().with_backup_pipeline_threads(257);
        assert!(cfg.validate().is_err());
        SlimConfig::default()
            .with_backup_pipeline_threads(256)
            .validate()
            .unwrap();
        SlimConfig::default()
            .with_backup_pipeline_threads(0)
            .validate()
            .unwrap();
    }

    #[test]
    fn pipeline_threads_default_fills_in_for_old_configs() {
        // Configs serialized before the pipeline existed must deserialize
        // with the production default rather than failing.
        let mut json: serde_json::Value =
            serde_json::to_value(SlimConfig::small_for_tests()).unwrap();
        json.as_object_mut()
            .unwrap()
            .remove("backup_pipeline_threads");
        let cfg: SlimConfig = serde_json::from_value(json).unwrap();
        assert_eq!(cfg.backup_pipeline_threads, 4);
    }

    #[test]
    fn compression_default_fills_in_for_old_configs() {
        // Configs serialized before the compression plane existed must
        // deserialize with it enabled (the production default).
        let mut json: serde_json::Value =
            serde_json::to_value(SlimConfig::small_for_tests().with_compression(false)).unwrap();
        json.as_object_mut().unwrap().remove("compression");
        let cfg: SlimConfig = serde_json::from_value(json).unwrap();
        assert!(cfg.compression);
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_bad_resilience_knobs() {
        let cfg = SlimConfig::default().with_oss_endpoints(0);
        assert!(cfg.validate().is_err());
        let cfg = SlimConfig::default().with_oss_endpoints(65);
        assert!(cfg.validate().is_err());
        let cfg = SlimConfig::default().with_retry_attempts(101);
        assert!(cfg.validate().is_err());
        SlimConfig::default()
            .with_oss_endpoints(64)
            .with_retry_attempts(100)
            .with_hedged_reads(false)
            .validate()
            .unwrap();
    }

    #[test]
    fn resilience_defaults_fill_in_for_old_configs() {
        // Configs serialized before the resilience plane existed must
        // deserialize with its production defaults.
        let mut json: serde_json::Value =
            serde_json::to_value(SlimConfig::small_for_tests()).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("hedged_reads");
        obj.remove("oss_endpoints");
        obj.remove("retry_attempts");
        let cfg: SlimConfig = serde_json::from_value(json).unwrap();
        assert!(cfg.hedged_reads);
        assert_eq!(cfg.oss_endpoints, 4);
        assert_eq!(cfg.retry_attempts, 0);
    }

    #[test]
    fn with_avg_chunk_size_keeps_spread() {
        let cfg = SlimConfig::default().with_avg_chunk_size(32 * 1024);
        assert_eq!(cfg.min_chunk_size, 8 * 1024);
        assert_eq!(cfg.max_chunk_size, 128 * 1024);
        cfg.validate().unwrap();
    }
}
