//! Minimal checked binary codec.
//!
//! Everything persisted to the object store (recipes, recipe indexes,
//! container metadata, version manifests) is encoded with these helpers.
//! Encodings are little-endian, length-prefixed where variable, and carry a
//! magic + format version so corruption and incompatible upgrades fail loudly
//! instead of decoding garbage.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Result, SlimError};
use crate::fingerprint::{Fingerprint, FINGERPRINT_LEN};

/// A reader over an encoded buffer that validates every read.
pub struct Reader<'a> {
    buf: &'a [u8],
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Wrap `buf`; `what` names the structure being decoded for errors.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, what }
    }

    fn ensure(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            return Err(SlimError::corrupt(
                self.what,
                format!("needed {n} more bytes, {} remain", self.buf.remaining()),
            ));
        }
        Ok(())
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Decode a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        self.ensure(1)?;
        Ok(self.buf.get_u8())
    }

    /// Decode a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        self.ensure(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Decode a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        self.ensure(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Decode an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        self.ensure(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Decode a fingerprint.
    pub fn fingerprint(&mut self) -> Result<Fingerprint> {
        self.ensure(FINGERPRINT_LEN)?;
        let mut bytes = [0u8; FINGERPRINT_LEN];
        self.buf.copy_to_slice(&mut bytes);
        Ok(Fingerprint(bytes))
    }

    /// Decode a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        self.ensure(len)?;
        let mut out = vec![0u8; len];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Decode a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw)
            .map_err(|e| SlimError::corrupt(self.what, format!("invalid utf-8: {e}")))
    }

    /// Check a 4-byte magic and a format version byte.
    pub fn expect_header(&mut self, magic: &[u8; 4], version: u8) -> Result<()> {
        self.ensure(5)?;
        let mut got = [0u8; 4];
        self.buf.copy_to_slice(&mut got);
        if &got != magic {
            return Err(SlimError::corrupt(
                self.what,
                format!("bad magic {got:02x?}, expected {magic:02x?}"),
            ));
        }
        let v = self.buf.get_u8();
        if v != version {
            return Err(SlimError::corrupt(
                self.what,
                format!("unsupported format version {v}, expected {version}"),
            ));
        }
        Ok(())
    }

    /// Check a 4-byte magic and return the format version byte, for
    /// structures that accept more than one on-disk version. The caller
    /// decides which versions it can decode; an unexpected version is its
    /// corruption error to raise, with the context only it has.
    pub fn sniff_header(&mut self, magic: &[u8; 4]) -> Result<u8> {
        self.ensure(5)?;
        let mut got = [0u8; 4];
        self.buf.copy_to_slice(&mut got);
        if &got != magic {
            return Err(SlimError::corrupt(
                self.what,
                format!("bad magic {got:02x?}, expected {magic:02x?}"),
            ));
        }
        Ok(self.buf.get_u8())
    }

    /// Error unless the buffer is fully consumed.
    pub fn finish(self) -> Result<()> {
        if self.buf.remaining() != 0 {
            return Err(SlimError::corrupt(
                self.what,
                format!("{} trailing bytes", self.buf.remaining()),
            ));
        }
        Ok(())
    }
}

/// A writer producing an encoded buffer.
#[derive(Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// New writer with a 4-byte magic and format version byte.
    pub fn with_header(magic: &[u8; 4], version: u8) -> Self {
        let mut w = Writer::new();
        w.buf.put_slice(magic);
        w.buf.put_u8(version);
        w
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Append a fingerprint.
    pub fn fingerprint(&mut self, fp: &Fingerprint) -> &mut Self {
        self.buf.put_slice(fp.as_bytes());
        self
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the encoded buffer.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::with_header(b"TEST", 1);
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).f64(0.25);
        w.string("hello").bytes(&[1, 2, 3]);
        let fp = Fingerprint::from_slice(&[9u8; 20]).unwrap();
        w.fingerprint(&fp);
        let buf = w.freeze();

        let mut r = Reader::new(&buf, "test");
        r.expect_header(b"TEST", 1).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.fingerprint().unwrap(), fp);
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let w = Writer::with_header(b"AAAA", 1);
        let buf = w.freeze();
        let mut r = Reader::new(&buf, "test");
        assert!(r.expect_header(b"BBBB", 1).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let w = Writer::with_header(b"AAAA", 2);
        let buf = w.freeze();
        let mut r = Reader::new(&buf, "test");
        assert!(r.expect_header(b"AAAA", 1).is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.freeze();
        let mut r = Reader::new(&buf[..4], "test");
        assert!(r.u64().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u32(1).u8(0);
        let buf = w.freeze();
        let mut r = Reader::new(&buf, "test");
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.freeze();
        let mut r = Reader::new(&buf, "test");
        assert!(r.string().is_err());
    }
}
