//! Bloom filters.
//!
//! Two variants are used across SLIMSTORE:
//!
//! * [`BloomFilter`] — the classic bit-array filter. The G-node uses one to
//!   pre-filter unique chunks before querying the global index (§VI-A), and
//!   Rocks-OSS attaches one to every SSTable.
//! * [`CountingBloomFilter`] — 4-bit counters instead of bits. The restore
//!   cache builds one per file from the recipe to know, for every chunk, how
//!   many future references remain (§V-A "full vision replacement policy").
//!
//! Keys are 64-bit hashes (use [`crate::Fingerprint::prefix64`] for chunk
//! fingerprints — SHA-1 prefixes are uniform). Double hashing derives the k
//! probe positions from two mixes of the key.

use serde::{Deserialize, Serialize};

/// Finalizer from SplitMix64; a cheap, well-distributed 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash arbitrary bytes to a u64 (FNV-1a then mixed); used for string keys.
#[inline]
pub fn hash_bytes(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

#[inline]
fn probes(key: u64, k: u32, slots: usize) -> impl Iterator<Item = usize> {
    let h1 = mix64(key);
    // Ensure the stride is odd so it is coprime with power-of-two slot
    // counts and never zero.
    let h2 = mix64(key ^ 0xA5A5_A5A5_A5A5_A5A5) | 1;
    (0..k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % slots as u64) as usize)
}

/// Standard bloom filter over 64-bit keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Build a filter sized for `expected_items` at roughly
    /// `false_positive_rate` (clamped to sane bounds).
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-9, 0.5);
        let n_bits = ((-n * p.ln()) / (2f64.ln().powi(2))).ceil() as usize;
        let n_bits = n_bits.max(64);
        let k = ((n_bits as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        BloomFilter {
            bits: vec![0u64; n_bits.div_ceil(64)],
            n_bits,
            k,
            inserted: 0,
        }
    }

    /// Build with an explicit bit count and hash count.
    pub fn with_params(n_bits: usize, k: u32) -> Self {
        let n_bits = n_bits.max(64);
        BloomFilter {
            bits: vec![0u64; n_bits.div_ceil(64)],
            n_bits,
            k: k.clamp(1, 16),
            inserted: 0,
        }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        for pos in probes(key, self.k, self.n_bits) {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Whether the key may have been inserted (false positives possible,
    /// false negatives impossible).
    pub fn may_contain(&self, key: u64) -> bool {
        probes(key, self.k, self.n_bits).all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Number of insert calls.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Size of the bit array in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Serialize to bytes (used by SSTable footers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        out.extend_from_slice(&(self.n_bits as u64).to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.inserted).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`BloomFilter::encode`] output.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 20 {
            return None;
        }
        let n_bits = u64::from_le_bytes(buf[0..8].try_into().ok()?) as usize;
        let k = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        let inserted = u64::from_le_bytes(buf[12..20].try_into().ok()?);
        let words = n_bits.div_ceil(64);
        if buf.len() != 20 + words * 8 {
            return None;
        }
        let mut bits = Vec::with_capacity(words);
        for i in 0..words {
            bits.push(u64::from_le_bytes(
                buf[20 + i * 8..28 + i * 8].try_into().ok()?,
            ));
        }
        Some(BloomFilter {
            bits,
            n_bits,
            k,
            inserted,
        })
    }
}

/// Counting bloom filter with 4-bit saturating counters.
///
/// Supports `insert` / `remove` / `count > 0` queries. Counters saturate at
/// 15 and saturated counters are never decremented (standard CBF behaviour:
/// correctness degrades to "may contain" but never to a false negative for
/// keys whose true count is nonzero, provided no counter both saturates and
/// is fully removed).
#[derive(Debug, Clone)]
pub struct CountingBloomFilter {
    nibbles: Vec<u8>, // two 4-bit counters per byte
    n_slots: usize,
    k: u32,
}

impl CountingBloomFilter {
    /// Build sized for `expected_items` distinct keys.
    pub fn new(expected_items: usize) -> Self {
        // ~10 slots per item gives <1% FP at k=4 and room for counts.
        let n_slots = (expected_items.max(1) * 10).next_power_of_two();
        CountingBloomFilter {
            nibbles: vec![0u8; n_slots.div_ceil(2)],
            n_slots,
            k: 4,
        }
    }

    #[inline]
    fn get_slot(&self, i: usize) -> u8 {
        let b = self.nibbles[i / 2];
        if i % 2 == 0 {
            b & 0x0f
        } else {
            b >> 4
        }
    }

    #[inline]
    fn set_slot(&mut self, i: usize, v: u8) {
        debug_assert!(v <= 0x0f);
        let b = &mut self.nibbles[i / 2];
        if i % 2 == 0 {
            *b = (*b & 0xf0) | v;
        } else {
            *b = (*b & 0x0f) | (v << 4);
        }
    }

    /// Increment the counters for `key`.
    pub fn insert(&mut self, key: u64) {
        for pos in probes(key, self.k, self.n_slots) {
            let c = self.get_slot(pos);
            if c < 0x0f {
                self.set_slot(pos, c + 1);
            }
        }
    }

    /// Decrement the counters for `key` (on restore of one reference).
    pub fn remove(&mut self, key: u64) {
        for pos in probes(key, self.k, self.n_slots) {
            let c = self.get_slot(pos);
            if c > 0 && c < 0x0f {
                self.set_slot(pos, c - 1);
            }
        }
    }

    /// Whether `key` still has at least one outstanding reference
    /// (no false negatives; rare false positives).
    pub fn may_contain(&self, key: u64) -> bool {
        probes(key, self.k, self.n_slots).all(|pos| self.get_slot(pos) > 0)
    }

    /// A lower bound estimate of the outstanding count for `key`
    /// (minimum over its counters).
    pub fn estimate(&self, key: u64) -> u8 {
        probes(key, self.k, self.n_slots)
            .map(|pos| self.get_slot(pos))
            .min()
            .unwrap_or(0)
    }

    /// Size in bytes of the counter array.
    pub fn byte_size(&self) -> usize {
        self.nibbles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01);
        for i in 0..1000u64 {
            bf.insert(mix64(i));
        }
        for i in 0..1000u64 {
            assert!(bf.may_contain(mix64(i)));
        }
    }

    #[test]
    fn bloom_false_positive_rate_reasonable() {
        let mut bf = BloomFilter::with_rate(10_000, 0.01);
        for i in 0..10_000u64 {
            bf.insert(mix64(i));
        }
        let fps = (10_000..110_000u64)
            .filter(|&i| bf.may_contain(mix64(i)))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn bloom_encode_decode() {
        let mut bf = BloomFilter::with_rate(100, 0.01);
        for i in 0..100u64 {
            bf.insert(i);
        }
        let buf = bf.encode();
        let back = BloomFilter::decode(&buf).unwrap();
        assert_eq!(back.inserted(), 100);
        for i in 0..100u64 {
            assert!(back.may_contain(i));
        }
        assert!(BloomFilter::decode(&buf[..buf.len() - 1]).is_none());
        assert!(BloomFilter::decode(&[0u8; 3]).is_none());
    }

    #[test]
    fn cbf_counts_up_and_down() {
        let mut cbf = CountingBloomFilter::new(100);
        cbf.insert(42);
        cbf.insert(42);
        assert!(cbf.may_contain(42));
        assert!(cbf.estimate(42) >= 2);
        cbf.remove(42);
        assert!(cbf.may_contain(42));
        cbf.remove(42);
        assert!(!cbf.may_contain(42));
    }

    #[test]
    fn cbf_no_false_negative_under_load() {
        let mut cbf = CountingBloomFilter::new(2000);
        for i in 0..2000u64 {
            cbf.insert(mix64(i));
        }
        for i in 0..2000u64 {
            assert!(cbf.may_contain(mix64(i)), "false negative at {i}");
        }
        // Remove half; the removed half may still false-positive but the
        // remaining half must all be present.
        for i in 0..1000u64 {
            cbf.remove(mix64(i));
        }
        for i in 1000..2000u64 {
            assert!(cbf.may_contain(mix64(i)));
        }
    }

    #[test]
    fn cbf_saturation_is_sticky() {
        let mut cbf = CountingBloomFilter::new(4);
        for _ in 0..100 {
            cbf.insert(7);
        }
        for _ in 0..100 {
            cbf.remove(7);
        }
        // Saturated counters never decrement: still "contains".
        assert!(cbf.may_contain(7));
    }

    #[test]
    fn hash_bytes_distinguishes() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
    }
}
