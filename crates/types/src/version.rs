//! Backup versions and their manifests.
//!
//! Each backup run produces a [`VersionManifest`] recording which files were
//! backed up, where their recipes live, which containers the run created,
//! and — per §VI-B — which containers become *garbage* the moment this
//! version is deleted (the Mark phase of garbage collection is folded into
//! deduplication; version deletion only needs the Sweep phase).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::container::ContainerId;
use crate::error::Result;

/// Identifier of one backup version (monotonically increasing per user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(pub u64);

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl VersionId {
    /// The next version number.
    pub fn next(self) -> VersionId {
        VersionId(self.0 + 1)
    }
}

/// Identifier of a backup file: its user-visible path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub String);

impl FileId {
    /// Construct from any path-like string.
    pub fn new(path: impl Into<String>) -> Self {
        FileId(path.into())
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-file outcome of a backup job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileBackupInfo {
    /// Which file.
    pub file: FileId,
    /// OSS key of the recipe object.
    pub recipe_key: String,
    /// OSS key of the recipe index object.
    pub recipe_index_key: String,
    /// Logical (pre-dedup) size of the file in this version.
    pub logical_bytes: u64,
    /// Bytes of *new* (non-duplicate) chunk payload this version stored.
    pub stored_bytes: u64,
    /// Number of chunk records in the recipe.
    pub chunk_count: u64,
    /// Number of records confirmed duplicate during online dedup.
    pub duplicate_count: u64,
}

/// The manifest of one backup version.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VersionManifest {
    /// Version number.
    pub version: u64,
    /// Files captured in this version.
    pub files: Vec<FileBackupInfo>,
    /// Containers created while deduplicating this version (input to the
    /// G-node's reverse deduplication, §VI-A).
    pub new_containers: Vec<ContainerId>,
    /// Containers that become garbage when this version is deleted: those
    /// referenced here but not by version N+1 or any similar file, plus
    /// sparse containers emptied by compaction (§VI-B).
    pub garbage_on_delete: Vec<ContainerId>,
}

const MANIFEST_MAGIC: &[u8; 4] = b"SLVM";
const MANIFEST_VERSION: u8 = 1;

impl VersionManifest {
    /// A fresh manifest for `version`.
    pub fn new(version: VersionId) -> Self {
        VersionManifest {
            version: version.0,
            ..Default::default()
        }
    }

    /// Typed version id.
    pub fn id(&self) -> VersionId {
        VersionId(self.version)
    }

    /// Total logical bytes across files.
    pub fn logical_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.logical_bytes).sum()
    }

    /// Total newly stored bytes across files.
    pub fn stored_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.stored_bytes).sum()
    }

    /// Deduplication ratio of this version as defined in §VII-B:
    /// deleted duplicate bytes / logical bytes.
    pub fn dedup_ratio(&self) -> f64 {
        let logical = self.logical_bytes();
        if logical == 0 {
            return 0.0;
        }
        logical.saturating_sub(self.stored_bytes()) as f64 / logical as f64
    }

    /// Find the backup info for `file`.
    pub fn file(&self, file: &FileId) -> Option<&FileBackupInfo> {
        self.files.iter().find(|f| &f.file == file)
    }

    /// Serialize to the OSS wire format.
    pub fn encode(&self) -> bytes::Bytes {
        let mut w = Writer::with_header(MANIFEST_MAGIC, MANIFEST_VERSION);
        w.u64(self.version);
        w.u32(self.files.len() as u32);
        for f in &self.files {
            w.string(f.file.as_str());
            w.string(&f.recipe_key);
            w.string(&f.recipe_index_key);
            w.u64(f.logical_bytes);
            w.u64(f.stored_bytes);
            w.u64(f.chunk_count);
            w.u64(f.duplicate_count);
        }
        w.u32(self.new_containers.len() as u32);
        for c in &self.new_containers {
            w.u64(c.0);
        }
        w.u32(self.garbage_on_delete.len() as u32);
        for c in &self.garbage_on_delete {
            w.u64(c.0);
        }
        w.freeze()
    }

    /// Deserialize from the OSS wire format.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "version manifest");
        r.expect_header(MANIFEST_MAGIC, MANIFEST_VERSION)?;
        let version = r.u64()?;
        let nf = r.u32()? as usize;
        let mut files = Vec::with_capacity(nf);
        for _ in 0..nf {
            files.push(FileBackupInfo {
                file: FileId::new(r.string()?),
                recipe_key: r.string()?,
                recipe_index_key: r.string()?,
                logical_bytes: r.u64()?,
                stored_bytes: r.u64()?,
                chunk_count: r.u64()?,
                duplicate_count: r.u64()?,
            });
        }
        let nc = r.u32()? as usize;
        let mut new_containers = Vec::with_capacity(nc);
        for _ in 0..nc {
            new_containers.push(ContainerId(r.u64()?));
        }
        let ng = r.u32()? as usize;
        let mut garbage_on_delete = Vec::with_capacity(ng);
        for _ in 0..ng {
            garbage_on_delete.push(ContainerId(r.u64()?));
        }
        r.finish()?;
        Ok(VersionManifest {
            version,
            files,
            new_containers,
            garbage_on_delete,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VersionManifest {
        VersionManifest {
            version: 3,
            files: vec![FileBackupInfo {
                file: FileId::new("db/table_0.ibd"),
                recipe_key: "recipes/db/table_0.ibd/3".into(),
                recipe_index_key: "recipe-index/db/table_0.ibd/3".into(),
                logical_bytes: 1000,
                stored_bytes: 160,
                chunk_count: 10,
                duplicate_count: 8,
            }],
            new_containers: vec![ContainerId(5), ContainerId(6)],
            garbage_on_delete: vec![ContainerId(1)],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let buf = m.encode();
        let back = VersionManifest::decode(&buf).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn dedup_ratio() {
        let m = sample();
        assert!((m.dedup_ratio() - 0.84).abs() < 1e-9);
        let empty = VersionManifest::new(VersionId(0));
        assert_eq!(empty.dedup_ratio(), 0.0);
    }

    #[test]
    fn file_lookup() {
        let m = sample();
        assert!(m.file(&FileId::new("db/table_0.ibd")).is_some());
        assert!(m.file(&FileId::new("nope")).is_none());
    }

    #[test]
    fn corruption_detected() {
        let buf = sample().encode();
        assert!(VersionManifest::decode(&buf[..buf.len() - 2]).is_err());
        let mut bad = buf.to_vec();
        bad[1] ^= 0x55;
        assert!(VersionManifest::decode(&bad).is_err());
    }

    #[test]
    fn version_id_next_and_display() {
        assert_eq!(VersionId(4).next(), VersionId(5));
        assert_eq!(VersionId(4).to_string(), "v4");
        assert_eq!(ContainerId(2).to_string(), "C2");
    }
}
