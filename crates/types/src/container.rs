//! Containers — the physical storage unit on OSS.
//!
//! Non-duplicate chunks are aggregated into fixed-capacity containers
//! (§III-B). A container's *data object* is the raw concatenation of chunk
//! payloads; its *metadata* records each chunk's fingerprint, offset, length
//! and deletion state, plus the stale-chunk proportion used by sparse
//! container compaction (§V-B) and reverse deduplication (§VI-A). Metadata is
//! stored as a separate OSS object so the G-node can mark chunks deleted
//! without touching payload bytes.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::error::Result;
use crate::fingerprint::Fingerprint;

/// Globally unique, monotonically increasing container identifier.
///
/// Monotonicity matters: reverse deduplication keeps the copy in the
/// *newer* container (larger id) and deletes the copy in the older one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Metadata for one chunk stored in a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerEntry {
    /// Fingerprint of the stored payload.
    pub fp: Fingerprint,
    /// Byte offset of the payload within the container data object.
    pub offset: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// Set by reverse deduplication / SCC when this copy is superseded; the
    /// payload bytes remain until the container is rewritten.
    pub deleted: bool,
}

const META_MAGIC: &[u8; 4] = b"SLCM";
const META_VERSION: u8 = 1;

/// Metadata of one container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerMeta {
    /// The container this metadata describes.
    pub id: ContainerId,
    /// Entries in physical (offset) order.
    pub entries: Vec<ContainerEntry>,
    /// Total payload bytes when the container was sealed (including bytes of
    /// chunks that were later marked deleted).
    pub data_len: u32,
}

impl ContainerMeta {
    /// Metadata for a freshly sealed container.
    pub fn new(id: ContainerId, entries: Vec<ContainerEntry>, data_len: u32) -> Self {
        ContainerMeta {
            id,
            entries,
            data_len,
        }
    }

    /// Number of chunks, including deleted ones.
    pub fn total_chunks(&self) -> usize {
        self.entries.len()
    }

    /// Number of live (not deleted) chunks.
    pub fn live_chunks(&self) -> usize {
        self.entries.iter().filter(|e| !e.deleted).count()
    }

    /// Number of chunks marked deleted.
    pub fn deleted_chunks(&self) -> usize {
        self.entries.len() - self.live_chunks()
    }

    /// Bytes of live payload.
    pub fn live_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| e.len as u64)
            .sum()
    }

    /// Bytes of deleted payload still physically present.
    pub fn stale_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.deleted)
            .map(|e| e.len as u64)
            .sum()
    }

    /// Fraction of chunks marked deleted (the §VI-A rewrite trigger).
    pub fn deleted_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.deleted_chunks() as f64 / self.entries.len() as f64
    }

    /// Find the live entry for `fp`, if present.
    pub fn find_live(&self, fp: &Fingerprint) -> Option<&ContainerEntry> {
        self.entries.iter().find(|e| !e.deleted && e.fp == *fp)
    }

    /// Find any entry for `fp` (live or deleted).
    pub fn find(&self, fp: &Fingerprint) -> Option<&ContainerEntry> {
        self.entries.iter().find(|e| e.fp == *fp)
    }

    /// Mark the entry for `fp` deleted. Returns whether an entry flipped
    /// from live to deleted.
    pub fn mark_deleted(&mut self, fp: &Fingerprint) -> bool {
        for e in &mut self.entries {
            if e.fp == *fp && !e.deleted {
                e.deleted = true;
                return true;
            }
        }
        false
    }

    /// Map fingerprint → (offset, len) for all live entries.
    pub fn live_map(&self) -> HashMap<Fingerprint, (u32, u32)> {
        self.entries
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| (e.fp, (e.offset, e.len)))
            .collect()
    }

    /// Serialize to the OSS wire format.
    pub fn encode(&self) -> bytes::Bytes {
        let mut w = Writer::with_header(META_MAGIC, META_VERSION);
        w.u64(self.id.0);
        w.u32(self.data_len);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.fingerprint(&e.fp);
            w.u32(e.offset);
            w.u32(e.len);
            w.u8(u8::from(e.deleted));
        }
        w.freeze()
    }

    /// Deserialize from the OSS wire format.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "container meta");
        r.expect_header(META_MAGIC, META_VERSION)?;
        let id = ContainerId(r.u64()?);
        let data_len = r.u32()?;
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(ContainerEntry {
                fp: r.fingerprint()?,
                offset: r.u32()?,
                len: r.u32()?,
                deleted: r.u8()? != 0,
            });
        }
        r.finish()?;
        Ok(ContainerMeta {
            id,
            entries,
            data_len,
        })
    }
}

/// An in-memory container being filled by a backup job (§IV-A Step 3).
///
/// When [`ContainerBuilder::is_full`] reports true the caller seals it,
/// persists the data object and metadata to OSS, and starts a new one.
pub struct ContainerBuilder {
    id: ContainerId,
    capacity: usize,
    data: Vec<u8>,
    entries: Vec<ContainerEntry>,
}

impl ContainerBuilder {
    /// Start a new container with the given identity and byte capacity.
    pub fn new(id: ContainerId, capacity: usize) -> Self {
        ContainerBuilder {
            id,
            capacity,
            data: Vec::with_capacity(capacity),
            entries: Vec::new(),
        }
    }

    /// The id this container will be sealed under.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no chunk has been added yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether adding `next_len` more bytes would exceed capacity.
    pub fn would_overflow(&self, next_len: usize) -> bool {
        !self.data.is_empty() && self.data.len() + next_len > self.capacity
    }

    /// Whether the container has reached capacity.
    pub fn is_full(&self) -> bool {
        self.data.len() >= self.capacity
    }

    /// Append one chunk payload; returns its entry.
    pub fn push(&mut self, fp: Fingerprint, payload: &[u8]) -> ContainerEntry {
        let entry = ContainerEntry {
            fp,
            offset: self.data.len() as u32,
            len: payload.len() as u32,
            deleted: false,
        };
        self.data.extend_from_slice(payload);
        self.entries.push(entry);
        entry
    }

    /// Seal: produce the data object and its metadata.
    pub fn seal(self) -> (bytes::Bytes, ContainerMeta) {
        let data_len = self.data.len() as u32;
        (
            bytes::Bytes::from(self.data),
            ContainerMeta::new(self.id, self.entries, data_len),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    #[test]
    fn builder_tracks_offsets() {
        let mut b = ContainerBuilder::new(ContainerId(1), 1024);
        let e1 = b.push(fp(1), &[0u8; 100]);
        let e2 = b.push(fp(2), &[0u8; 50]);
        assert_eq!(e1.offset, 0);
        assert_eq!(e1.len, 100);
        assert_eq!(e2.offset, 100);
        assert_eq!(e2.len, 50);
        let (data, meta) = b.seal();
        assert_eq!(data.len(), 150);
        assert_eq!(meta.data_len, 150);
        assert_eq!(meta.total_chunks(), 2);
    }

    #[test]
    fn overflow_check() {
        let mut b = ContainerBuilder::new(ContainerId(1), 128);
        assert!(!b.would_overflow(4096), "empty container accepts any chunk");
        b.push(fp(1), &[0u8; 100]);
        assert!(b.would_overflow(29));
        assert!(!b.would_overflow(28));
        assert!(!b.is_full());
        b.push(fp(2), &[0u8; 28]);
        assert!(b.is_full());
    }

    #[test]
    fn meta_roundtrip() {
        let meta = ContainerMeta::new(
            ContainerId(9),
            vec![
                ContainerEntry {
                    fp: fp(1),
                    offset: 0,
                    len: 10,
                    deleted: false,
                },
                ContainerEntry {
                    fp: fp(2),
                    offset: 10,
                    len: 20,
                    deleted: true,
                },
            ],
            30,
        );
        let buf = meta.encode();
        let back = ContainerMeta::decode(&buf).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_decode_rejects_corruption() {
        let meta = ContainerMeta::new(ContainerId(1), vec![], 0);
        let mut buf = meta.encode().to_vec();
        buf[0] ^= 0xff;
        assert!(ContainerMeta::decode(&buf).is_err());
        let buf = meta.encode();
        assert!(ContainerMeta::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn utilization_accounting() {
        let mut meta = ContainerMeta::new(
            ContainerId(3),
            vec![
                ContainerEntry {
                    fp: fp(1),
                    offset: 0,
                    len: 10,
                    deleted: false,
                },
                ContainerEntry {
                    fp: fp(2),
                    offset: 10,
                    len: 30,
                    deleted: false,
                },
                ContainerEntry {
                    fp: fp(3),
                    offset: 40,
                    len: 60,
                    deleted: false,
                },
            ],
            100,
        );
        assert_eq!(meta.live_bytes(), 100);
        assert_eq!(meta.deleted_ratio(), 0.0);
        assert!(meta.mark_deleted(&fp(2)));
        assert!(!meta.mark_deleted(&fp(2)), "second mark is a no-op");
        assert!(!meta.mark_deleted(&fp(9)), "unknown fp is a no-op");
        assert_eq!(meta.live_bytes(), 70);
        assert_eq!(meta.stale_bytes(), 30);
        assert!((meta.deleted_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!(meta.find_live(&fp(2)).is_none());
        assert!(meta.find(&fp(2)).is_some());
        assert_eq!(meta.live_map().len(), 2);
    }
}
