//! Containers — the physical storage unit on OSS.
//!
//! Non-duplicate chunks are aggregated into fixed-capacity containers
//! (§III-B). A container's *data object* is the concatenation of per-chunk
//! *stored* payloads — each chunk independently LZ-compressed at build time
//! when profitable (see [`crate::compress`]), stored raw otherwise; its
//! *metadata* records each chunk's fingerprint, stored offset and length,
//! raw (uncompressed) length, and deletion state, plus the stale-chunk
//! proportion used by sparse container compaction (§V-B) and reverse
//! deduplication (§VI-A). Metadata is stored as a separate OSS object so the
//! G-node can mark chunks deleted without touching payload bytes.
//!
//! An entry is compressed iff `len < raw_len`; `len == raw_len` means the
//! stored bytes *are* the chunk. There is no per-chunk tag byte, and every
//! consumer of payload bytes goes through [`ContainerEntry::payload_from`],
//! which validates bounds with checked arithmetic and returns
//! [`SlimError::Corrupt`] — never panics — on a malformed entry.
//!
//! Capacity accounting in [`ContainerBuilder`] is deliberately in *raw*
//! bytes: container sealing boundaries, and therefore container ids and
//! every dedup statistic (containers read, skip hits, logical bytes), are
//! byte-for-byte identical whether compression is on or off. Only the
//! stored object shrinks.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::compress;
use crate::error::{Result, SlimError};
use crate::fingerprint::Fingerprint;

/// Globally unique, monotonically increasing container identifier.
///
/// Monotonicity matters: reverse deduplication keeps the copy in the
/// *newer* container (larger id) and deletes the copy in the older one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Metadata for one chunk stored in a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerEntry {
    /// Fingerprint of the chunk (always of the *raw* payload).
    pub fp: Fingerprint,
    /// Byte offset of the stored payload within the container data object.
    pub offset: u32,
    /// Stored payload length in bytes (compressed size when compressed).
    pub len: u32,
    /// Raw (uncompressed) chunk length in bytes. Equal to `len` for
    /// uncompressed entries; strictly greater for compressed ones.
    pub raw_len: u32,
    /// Set by reverse deduplication / SCC when this copy is superseded; the
    /// payload bytes remain until the container is rewritten.
    pub deleted: bool,
}

impl ContainerEntry {
    /// Whether the stored bytes are LZ-compressed.
    pub fn is_compressed(&self) -> bool {
        self.len < self.raw_len
    }

    /// The chunk's raw payload, extracted (and decompressed if needed) from
    /// the container data object.
    ///
    /// All arithmetic is checked in `u64`: an entry whose `offset + len`
    /// overflows `u32` or falls outside `data` — a bit-flipped meta that
    /// passed no CRC, say — yields [`SlimError::Corrupt`], never a slice
    /// panic. A compressed entry additionally must decompress to exactly
    /// `raw_len` bytes.
    pub fn payload_from(&self, data: &bytes::Bytes) -> Result<bytes::Bytes> {
        let start = self.offset as u64;
        let end = start + self.len as u64; // u32 + u32 cannot overflow u64
        if end > data.len() as u64 {
            return Err(SlimError::corrupt(
                "container entry",
                format!(
                    "entry {} spans {start}..{end} but container data is {} bytes",
                    self.fp.short_hex(),
                    data.len()
                ),
            ));
        }
        if self.len > self.raw_len {
            return Err(SlimError::corrupt(
                "container entry",
                format!(
                    "entry {} stored length {} exceeds raw length {}",
                    self.fp.short_hex(),
                    self.len,
                    self.raw_len
                ),
            ));
        }
        let stored = data.slice(start as usize..end as usize);
        if self.is_compressed() {
            Ok(bytes::Bytes::from(compress::decompress(
                &stored,
                self.raw_len as usize,
            )?))
        } else {
            Ok(stored)
        }
    }
}

const META_MAGIC: &[u8; 4] = b"SLCM";
/// v1: uncompressed entries (`fp, offset, len, deleted`), no `raw_len` on
/// the wire. v2 adds a `raw_len` per entry. Decode accepts both; encode
/// always writes v2.
const META_VERSION_V1: u8 = 1;
const META_VERSION: u8 = 2;

/// Metadata of one container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerMeta {
    /// The container this metadata describes.
    pub id: ContainerId,
    /// Entries in physical (offset) order.
    pub entries: Vec<ContainerEntry>,
    /// Total *stored* payload bytes when the container was sealed (including
    /// bytes of chunks that were later marked deleted).
    pub data_len: u32,
}

impl ContainerMeta {
    /// Metadata for a freshly sealed container.
    pub fn new(id: ContainerId, entries: Vec<ContainerEntry>, data_len: u32) -> Self {
        ContainerMeta {
            id,
            entries,
            data_len,
        }
    }

    /// Number of chunks, including deleted ones.
    pub fn total_chunks(&self) -> usize {
        self.entries.len()
    }

    /// Number of live (not deleted) chunks.
    pub fn live_chunks(&self) -> usize {
        self.entries.iter().filter(|e| !e.deleted).count()
    }

    /// Number of chunks marked deleted.
    pub fn deleted_chunks(&self) -> usize {
        self.entries.len() - self.live_chunks()
    }

    /// *Stored* bytes of live payload (what the live chunks occupy on OSS).
    pub fn live_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| e.len as u64)
            .sum()
    }

    /// *Raw* (uncompressed) bytes of live payload — the logical size the
    /// live chunks decompress to.
    pub fn live_raw_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| e.raw_len as u64)
            .sum()
    }

    /// Stored bytes of deleted payload still physically present.
    pub fn stale_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.deleted)
            .map(|e| e.len as u64)
            .sum()
    }

    /// Fraction of chunks marked deleted (the §VI-A rewrite trigger).
    pub fn deleted_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.deleted_chunks() as f64 / self.entries.len() as f64
    }

    /// Find the live entry for `fp`, if present.
    pub fn find_live(&self, fp: &Fingerprint) -> Option<&ContainerEntry> {
        self.entries.iter().find(|e| !e.deleted && e.fp == *fp)
    }

    /// Find any entry for `fp` (live or deleted).
    pub fn find(&self, fp: &Fingerprint) -> Option<&ContainerEntry> {
        self.entries.iter().find(|e| e.fp == *fp)
    }

    /// Mark the entry for `fp` deleted. Returns whether an entry flipped
    /// from live to deleted.
    pub fn mark_deleted(&mut self, fp: &Fingerprint) -> bool {
        for e in &mut self.entries {
            if e.fp == *fp && !e.deleted {
                e.deleted = true;
                return true;
            }
        }
        false
    }

    /// Map fingerprint → (stored offset, stored len) for all live entries.
    pub fn live_map(&self) -> HashMap<Fingerprint, (u32, u32)> {
        self.entries
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| (e.fp, (e.offset, e.len)))
            .collect()
    }

    /// Serialize to the OSS wire format (always the current version).
    pub fn encode(&self) -> bytes::Bytes {
        let mut w = Writer::with_header(META_MAGIC, META_VERSION);
        w.u64(self.id.0);
        w.u32(self.data_len);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.fingerprint(&e.fp);
            w.u32(e.offset);
            w.u32(e.len);
            w.u32(e.raw_len);
            w.u8(u8::from(e.deleted));
        }
        w.freeze()
    }

    /// Deserialize from the OSS wire format.
    ///
    /// Accepts v1 (pre-compression; `raw_len` is implied equal to `len`)
    /// and v2 metas, and validates the structural invariants at the
    /// boundary: every entry lies within `data_len` (checked in `u64`, so a
    /// poisoned `offset + len` cannot wrap) and stores no more than its raw
    /// length. A violating meta decodes to [`SlimError::Corrupt`] instead
    /// of handing poisoned entries to payload-slicing callers.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf, "container meta");
        let version = r.sniff_header(META_MAGIC)?;
        if version != META_VERSION_V1 && version != META_VERSION {
            return Err(SlimError::corrupt(
                "container meta",
                format!(
                    "unsupported format version {version}, expected {META_VERSION_V1} or {META_VERSION}"
                ),
            ));
        }
        let id = ContainerId(r.u64()?);
        let data_len = r.u32()?;
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let fp = r.fingerprint()?;
            let offset = r.u32()?;
            let len = r.u32()?;
            let raw_len = if version >= META_VERSION {
                r.u32()?
            } else {
                len
            };
            let deleted = r.u8()? != 0;
            if offset as u64 + len as u64 > data_len as u64 {
                return Err(SlimError::corrupt(
                    "container meta",
                    format!(
                        "entry {} spans {offset}+{len} beyond data_len {data_len}",
                        fp.short_hex()
                    ),
                ));
            }
            if len > raw_len {
                return Err(SlimError::corrupt(
                    "container meta",
                    format!(
                        "entry {} stored length {len} exceeds raw length {raw_len}",
                        fp.short_hex()
                    ),
                ));
            }
            entries.push(ContainerEntry {
                fp,
                offset,
                len,
                raw_len,
                deleted,
            });
        }
        r.finish()?;
        Ok(ContainerMeta {
            id,
            entries,
            data_len,
        })
    }
}

/// Per-builder compression accounting, folded into telemetry
/// (`compress.*`) by the backup and rewrite paths that seal containers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Chunks pushed through a compressing builder.
    pub chunks: u64,
    /// Raw payload bytes pushed.
    pub raw_bytes: u64,
    /// Bytes actually stored (compressed where profitable).
    pub stored_bytes: u64,
    /// Chunks stored raw because compression was not strictly smaller.
    pub incompressible: u64,
}

impl CompressionStats {
    /// Accumulate another builder's stats.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.chunks += other.chunks;
        self.raw_bytes += other.raw_bytes;
        self.stored_bytes += other.stored_bytes;
        self.incompressible += other.incompressible;
    }
}

/// An in-memory container being filled by a backup job (§IV-A Step 3).
///
/// When [`ContainerBuilder::is_full`] reports true the caller seals it,
/// persists the data object and metadata to OSS, and starts a new one.
/// Capacity is tracked in **raw** bytes regardless of compression, so the
/// container boundaries a stream produces are identical with compression on
/// or off.
pub struct ContainerBuilder {
    id: ContainerId,
    capacity: usize,
    data: Vec<u8>,
    entries: Vec<ContainerEntry>,
    /// Raw payload bytes pushed so far (== `data.len()` when not
    /// compressing).
    raw_total: usize,
    compress: bool,
    stats: CompressionStats,
}

impl ContainerBuilder {
    /// Start a new container with the given identity and *raw* byte
    /// capacity. Compression is off; see [`ContainerBuilder::with_compression`].
    pub fn new(id: ContainerId, capacity: usize) -> Self {
        ContainerBuilder {
            id,
            capacity,
            data: Vec::with_capacity(capacity),
            entries: Vec::new(),
            raw_total: 0,
            compress: false,
            stats: CompressionStats::default(),
        }
    }

    /// Builder-style toggle for per-chunk compression (gated by
    /// `SlimConfig::compression` at the production call sites).
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// The id this container will be sealed under.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Raw payload bytes currently buffered (the capacity-accounting size).
    pub fn len(&self) -> usize {
        self.raw_total
    }

    /// Stored bytes currently buffered (what `seal` will persist).
    pub fn stored_len(&self) -> usize {
        self.data.len()
    }

    /// Whether no chunk has been added yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether adding `next_len` more *raw* bytes would exceed capacity.
    pub fn would_overflow(&self, next_len: usize) -> bool {
        !self.entries.is_empty() && self.raw_total + next_len > self.capacity
    }

    /// Whether the container has reached capacity (in raw bytes).
    pub fn is_full(&self) -> bool {
        self.raw_total >= self.capacity
    }

    /// Compression accounting for the chunks pushed so far.
    pub fn compression_stats(&self) -> CompressionStats {
        self.stats
    }

    /// Append one chunk payload (raw bytes), compressing it when enabled
    /// and strictly profitable; returns its entry.
    pub fn push(&mut self, fp: Fingerprint, payload: &[u8]) -> ContainerEntry {
        let compressed = if self.compress {
            compress::compress(payload)
        } else {
            None
        };
        let stored: &[u8] = compressed.as_deref().unwrap_or(payload);
        assert!(
            self.data.len() as u64 + stored.len() as u64 <= u32::MAX as u64,
            "container data object exceeds the u32 offset space"
        );
        let entry = ContainerEntry {
            fp,
            offset: self.data.len() as u32,
            len: stored.len() as u32,
            raw_len: payload.len() as u32,
            deleted: false,
        };
        self.stats.chunks += 1;
        self.stats.raw_bytes += payload.len() as u64;
        self.stats.stored_bytes += stored.len() as u64;
        if self.compress && compressed.is_none() {
            self.stats.incompressible += 1;
        }
        self.data.extend_from_slice(stored);
        self.raw_total += payload.len();
        self.entries.push(entry);
        entry
    }

    /// Seal: produce the data object and its metadata.
    pub fn seal(self) -> (bytes::Bytes, ContainerMeta) {
        let data_len = self.data.len() as u32;
        (
            bytes::Bytes::from(self.data),
            ContainerMeta::new(self.id, self.entries, data_len),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    #[test]
    fn builder_tracks_offsets() {
        let mut b = ContainerBuilder::new(ContainerId(1), 1024);
        let e1 = b.push(fp(1), &[0u8; 100]);
        let e2 = b.push(fp(2), &[0u8; 50]);
        assert_eq!(e1.offset, 0);
        assert_eq!(e1.len, 100);
        assert_eq!(e1.raw_len, 100);
        assert!(!e1.is_compressed());
        assert_eq!(e2.offset, 100);
        assert_eq!(e2.len, 50);
        let (data, meta) = b.seal();
        assert_eq!(data.len(), 150);
        assert_eq!(meta.data_len, 150);
        assert_eq!(meta.total_chunks(), 2);
    }

    #[test]
    fn overflow_check() {
        let mut b = ContainerBuilder::new(ContainerId(1), 128);
        assert!(!b.would_overflow(4096), "empty container accepts any chunk");
        b.push(fp(1), &[0u8; 100]);
        assert!(b.would_overflow(29));
        assert!(!b.would_overflow(28));
        assert!(!b.is_full());
        b.push(fp(2), &[0u8; 28]);
        assert!(b.is_full());
    }

    #[test]
    fn compressing_builder_shrinks_storage_and_roundtrips() {
        let payload: Vec<u8> = b"slimstore ".iter().copied().cycle().take(4096).collect();
        let mut b = ContainerBuilder::new(ContainerId(7), 1 << 20).with_compression(true);
        let e = b.push(fp(1), &payload);
        assert!(e.is_compressed());
        assert_eq!(e.raw_len as usize, payload.len());
        assert!((e.len as usize) < payload.len());
        let stats = b.compression_stats();
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.raw_bytes, payload.len() as u64);
        assert!(stats.stored_bytes < stats.raw_bytes);
        assert_eq!(stats.incompressible, 0);
        let (data, meta) = b.seal();
        assert_eq!(data.len() as u32, meta.data_len);
        assert!(data.len() < payload.len());
        let back = meta.entries[0].payload_from(&data).unwrap();
        assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn incompressible_chunks_stored_raw() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut payload = vec![0u8; 2048];
        rng.fill_bytes(&mut payload);
        let mut b = ContainerBuilder::new(ContainerId(8), 1 << 20).with_compression(true);
        let e = b.push(fp(1), &payload);
        assert!(!e.is_compressed());
        assert_eq!(e.len, e.raw_len);
        assert_eq!(b.compression_stats().incompressible, 1);
        let (data, meta) = b.seal();
        assert_eq!(meta.entries[0].payload_from(&data).unwrap(), payload);
    }

    #[test]
    fn capacity_accounting_is_raw_not_stored() {
        // Highly compressible chunks must still seal at the same raw
        // boundary as uncompressed ones: boundaries (and so container ids
        // and dedup statistics) are invariant under the compression knob.
        let payload = vec![7u8; 100];
        let mut on = ContainerBuilder::new(ContainerId(1), 128).with_compression(true);
        on.push(fp(1), &payload);
        assert!(on.stored_len() < 100, "payload compresses");
        assert_eq!(on.len(), 100, "capacity accounting sees raw bytes");
        assert!(on.would_overflow(29));
        assert!(!on.would_overflow(28));
        let mut off = ContainerBuilder::new(ContainerId(1), 128);
        off.push(fp(1), &payload);
        assert_eq!(on.would_overflow(29), off.would_overflow(29));
        assert_eq!(on.would_overflow(28), off.would_overflow(28));
        assert_eq!(on.is_full(), off.is_full());
    }

    #[test]
    fn meta_roundtrip() {
        let meta = ContainerMeta::new(
            ContainerId(9),
            vec![
                ContainerEntry {
                    fp: fp(1),
                    offset: 0,
                    len: 10,
                    raw_len: 25,
                    deleted: false,
                },
                ContainerEntry {
                    fp: fp(2),
                    offset: 10,
                    len: 20,
                    raw_len: 20,
                    deleted: true,
                },
            ],
            30,
        );
        let buf = meta.encode();
        let back = ContainerMeta::decode(&buf).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn v1_meta_still_decodes() {
        // A pre-compression meta written by the v1 codec: no raw_len on the
        // wire; decode fills raw_len = len.
        let mut w = Writer::with_header(META_MAGIC, META_VERSION_V1);
        w.u64(4);
        w.u32(30);
        w.u32(2);
        w.fingerprint(&fp(1));
        w.u32(0).u32(10).u8(0);
        w.fingerprint(&fp(2));
        w.u32(10).u32(20).u8(1);
        let meta = ContainerMeta::decode(&w.freeze()).unwrap();
        assert_eq!(meta.id, ContainerId(4));
        assert_eq!(meta.data_len, 30);
        assert_eq!(meta.entries.len(), 2);
        assert_eq!(meta.entries[0].raw_len, 10);
        assert!(!meta.entries[0].is_compressed());
        assert!(meta.entries[1].deleted);
        // Re-encoding upgrades to the current version transparently.
        let back = ContainerMeta::decode(&meta.encode()).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_decode_rejects_corruption() {
        let meta = ContainerMeta::new(ContainerId(1), vec![], 0);
        let mut buf = meta.encode().to_vec();
        buf[0] ^= 0xff;
        assert!(ContainerMeta::decode(&buf).is_err());
        let buf = meta.encode();
        assert!(ContainerMeta::decode(&buf[..buf.len() - 1]).is_err());
        // An unknown future version is corruption, not a silent misparse.
        let w = Writer::with_header(META_MAGIC, 9);
        assert!(ContainerMeta::decode(&w.freeze()).is_err());
    }

    #[test]
    fn meta_decode_rejects_out_of_bounds_entries() {
        // Entry extends past data_len.
        let meta = ContainerMeta::new(
            ContainerId(2),
            vec![ContainerEntry {
                fp: fp(1),
                offset: 5,
                len: 100,
                raw_len: 100,
                deleted: false,
            }],
            50,
        );
        let err = ContainerMeta::decode(&meta.encode()).unwrap_err();
        assert!(matches!(err, SlimError::Corrupt { .. }), "{err}");
        // offset + len wraps u32 — checked math must still reject it.
        let meta = ContainerMeta::new(
            ContainerId(2),
            vec![ContainerEntry {
                fp: fp(1),
                offset: u32::MAX - 10,
                len: u32::MAX - 10,
                raw_len: u32::MAX - 10,
                deleted: false,
            }],
            u32::MAX,
        );
        let err = ContainerMeta::decode(&meta.encode()).unwrap_err();
        assert!(matches!(err, SlimError::Corrupt { .. }), "{err}");
        // Stored longer than raw is structurally impossible for the builder.
        let meta = ContainerMeta::new(
            ContainerId(2),
            vec![ContainerEntry {
                fp: fp(1),
                offset: 0,
                len: 40,
                raw_len: 10,
                deleted: false,
            }],
            50,
        );
        let err = ContainerMeta::decode(&meta.encode()).unwrap_err();
        assert!(matches!(err, SlimError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn payload_from_rejects_poisoned_entries() {
        let data = bytes::Bytes::from(vec![1u8; 64]);
        // Overlong len.
        let e = ContainerEntry {
            fp: fp(1),
            offset: 32,
            len: 64,
            raw_len: 64,
            deleted: false,
        };
        assert!(matches!(
            e.payload_from(&data),
            Err(SlimError::Corrupt { .. })
        ));
        // offset + len overflowing u32 must not wrap into a "valid" range.
        let e = ContainerEntry {
            fp: fp(1),
            offset: u32::MAX,
            len: u32::MAX,
            raw_len: u32::MAX,
            deleted: false,
        };
        assert!(matches!(
            e.payload_from(&data),
            Err(SlimError::Corrupt { .. })
        ));
        // len > raw_len is invalid even when in bounds.
        let e = ContainerEntry {
            fp: fp(1),
            offset: 0,
            len: 32,
            raw_len: 8,
            deleted: false,
        };
        assert!(matches!(
            e.payload_from(&data),
            Err(SlimError::Corrupt { .. })
        ));
        // A "compressed" entry whose stored bytes are garbage decodes to
        // Corrupt, not a panic.
        let e = ContainerEntry {
            fp: fp(1),
            offset: 0,
            len: 32,
            raw_len: 1000,
            deleted: false,
        };
        assert!(matches!(
            e.payload_from(&data),
            Err(SlimError::Corrupt { .. })
        ));
    }

    #[test]
    fn utilization_accounting() {
        let mut meta = ContainerMeta::new(
            ContainerId(3),
            vec![
                ContainerEntry {
                    fp: fp(1),
                    offset: 0,
                    len: 10,
                    raw_len: 10,
                    deleted: false,
                },
                ContainerEntry {
                    fp: fp(2),
                    offset: 10,
                    len: 30,
                    raw_len: 45,
                    deleted: false,
                },
                ContainerEntry {
                    fp: fp(3),
                    offset: 40,
                    len: 60,
                    raw_len: 80,
                    deleted: false,
                },
            ],
            100,
        );
        assert_eq!(meta.live_bytes(), 100);
        assert_eq!(meta.live_raw_bytes(), 135);
        assert_eq!(meta.deleted_ratio(), 0.0);
        assert!(meta.mark_deleted(&fp(2)));
        assert!(!meta.mark_deleted(&fp(2)), "second mark is a no-op");
        assert!(!meta.mark_deleted(&fp(9)), "unknown fp is a no-op");
        assert_eq!(meta.live_bytes(), 70);
        assert_eq!(meta.live_raw_bytes(), 90);
        assert_eq!(meta.stale_bytes(), 30);
        assert!((meta.deleted_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!(meta.find_live(&fp(2)).is_none());
        assert!(meta.find(&fp(2)).is_some());
        assert_eq!(meta.live_map().len(), 2);
    }
}
