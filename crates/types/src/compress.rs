//! Per-chunk LZ compression for container payloads.
//!
//! A dependency-free, deterministic LZSS codec: greedy longest-match
//! parsing over hash chains, emitting flag-grouped literal/match tokens.
//! Each chunk compresses independently, so container range reads, XOR
//! parity groups and CRC trailers keep operating over stored bytes with no
//! knowledge of the codec; only the final per-entry decode step differs.
//!
//! Framing (no per-chunk header — the container entry's `raw_len` is the
//! authoritative output length):
//!
//! * a *flags* byte precedes every group of up to 8 tokens; bit `i`
//!   (LSB-first) describes token `i`;
//! * flag 0 — a literal: one raw byte;
//! * flag 1 — a match: `u16` little-endian backward distance
//!   (`1..=65535`, never beyond the bytes already produced) followed by
//!   one length byte encoding `match_len - MIN_MATCH`
//!   (`MIN_MATCH..=MIN_MATCH + 255` bytes).
//!
//! [`compress`] is strict about profitability: it returns `None` unless the
//! encoded form is *strictly* smaller than the input, so incompressible
//! chunks are stored raw and the `stored len == raw len` equality is the
//! (tag-free) marker for an uncompressed entry. [`decompress`] is strict
//! about shape: it must produce exactly the expected number of bytes from
//! exactly the provided input, and any violation — bad distance, output
//! overrun, input underrun, trailing bytes — is a [`SlimError::Corrupt`].

use crate::error::{Result, SlimError};

/// Shortest back-reference worth encoding: a match token costs 3 bytes
/// (+1/8 flag), so 4 literal bytes is the break-even point.
pub const MIN_MATCH: usize = 4;

/// Longest encodable match (`MIN_MATCH + 255`).
pub const MAX_MATCH: usize = MIN_MATCH + 255;

/// Farthest encodable backward distance (`u16` wire format, 0 reserved).
pub const MAX_DISTANCE: usize = 65_535;

/// Hash-chain search depth. Bounded for throughput; determinism comes from
/// the scan itself, not the bound — the same input always walks the same
/// chain.
const MAX_CHAIN: usize = 64;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` with greedy LZSS. Returns the encoded bytes only when
/// they are strictly smaller than `input`; `None` means "store raw".
///
/// Pure function of `input` — byte-identical output across runs, platforms
/// and call sites, which keeps recompression during G-node rewrites
/// convergent and pipelined backups byte-identical to sequential ones.
pub fn compress(input: &[u8]) -> Option<Vec<u8>> {
    if input.len() < MIN_MATCH + 1 {
        return None;
    }
    let mut out: Vec<u8> = Vec::with_capacity(input.len());
    // head[h] / prev[i]: most recent position hashing to `h`, and the chain
    // of earlier positions with the same hash. usize::MAX = empty.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];

    let mut flags_at = out.len();
    out.push(0);
    let mut flag_bit = 0u8;
    let mut emit = |out: &mut Vec<u8>, flags_at: &mut usize, flag_bit: &mut u8, is_match: bool| {
        if *flag_bit == 8 {
            *flags_at = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if is_match {
            out[*flags_at] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };

    let mut pos = 0usize;
    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let mut candidate = head[h];
            let mut steps = 0usize;
            let limit = (input.len() - pos).min(MAX_MATCH);
            while candidate != usize::MAX && steps < MAX_CHAIN {
                let dist = pos - candidate;
                if dist > MAX_DISTANCE {
                    break; // chain positions only get older
                }
                let mut l = 0usize;
                while l < limit && input[candidate + l] == input[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == limit {
                        break;
                    }
                }
                candidate = prev[candidate];
                steps += 1;
            }
            prev[pos] = head[h];
            head[h] = pos;
        }
        if best_len >= MIN_MATCH {
            emit(&mut out, &mut flags_at, &mut flag_bit, true);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index the interior positions of the match so later matches can
            // start inside it.
            for p in pos + 1..pos + best_len {
                if p + MIN_MATCH <= input.len() {
                    let h = hash4(&input[p..]);
                    prev[p] = head[h];
                    head[h] = p;
                }
            }
            pos += best_len;
        } else {
            emit(&mut out, &mut flags_at, &mut flag_bit, false);
            out.push(input[pos]);
            pos += 1;
        }
        if out.len() >= input.len() {
            return None; // already unprofitable; stop early
        }
    }
    if out.len() < input.len() {
        Some(out)
    } else {
        None
    }
}

/// Decompress `input` into exactly `raw_len` bytes.
///
/// Every structural violation is a [`SlimError::Corrupt`]: a distance of 0
/// or beyond the produced output, a token that would overrun `raw_len`, a
/// truncated token, or trailing input bytes after the output is complete.
pub fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let corrupt = |detail: String| SlimError::corrupt("compressed chunk", detail);
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while out.len() < raw_len {
        if i >= input.len() {
            return Err(corrupt(format!(
                "input exhausted at {i} with {} of {raw_len} bytes produced",
                out.len()
            )));
        }
        let flags = input[i];
        i += 1;
        let mut bit = 0u8;
        while bit < 8 && out.len() < raw_len {
            if flags & (1 << bit) == 0 {
                let Some(&b) = input.get(i) else {
                    return Err(corrupt(format!("truncated literal at {i}")));
                };
                out.push(b);
                i += 1;
            } else {
                if i + 3 > input.len() {
                    return Err(corrupt(format!("truncated match token at {i}")));
                }
                let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
                let len = input[i + 2] as usize + MIN_MATCH;
                i += 3;
                if dist == 0 || dist > out.len() {
                    return Err(corrupt(format!(
                        "match distance {dist} outside {} produced bytes",
                        out.len()
                    )));
                }
                if out.len() + len > raw_len {
                    return Err(corrupt(format!(
                        "match of {len} overruns raw length {raw_len} at {}",
                        out.len()
                    )));
                }
                // Byte-at-a-time: matches may self-overlap (RLE-style).
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            bit += 1;
        }
    }
    if i != input.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after output completed",
            input.len() - i
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> Option<Vec<u8>> {
        compress(input).map(|c| {
            assert!(c.len() < input.len(), "profitability is strict");
            let back = decompress(&c, input.len()).unwrap();
            assert_eq!(back, input);
            c
        })
    }

    #[test]
    fn compresses_repetitive_data() {
        let input: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        let c = roundtrip(&input).expect("repetitive data must compress");
        assert!(c.len() < input.len() / 4, "expected >4x on cyclic text");
    }

    #[test]
    fn run_length_extremes() {
        let input = vec![0xAB; 100_000];
        let c = roundtrip(&input).expect("constant data compresses");
        assert!(c.len() < 1024);
    }

    #[test]
    fn random_data_stored_raw() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut buf = vec![0u8; 16 * 1024];
        rng.fill_bytes(&mut buf);
        assert!(compress(&buf).is_none(), "random bytes are incompressible");
    }

    #[test]
    fn tiny_inputs_stored_raw() {
        assert!(compress(&[]).is_none());
        assert!(compress(b"abc").is_none());
        assert!(compress(b"aaaa").is_none());
    }

    #[test]
    fn deterministic() {
        let input: Vec<u8> = (0..4096u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        assert_eq!(compress(&input), compress(&input));
    }

    #[test]
    fn structured_inputs_roundtrip() {
        // A grab-bag of shapes: short runs, interleaved patterns, mostly
        // unique with a repeated tail, overlap-copy cases (dist < len).
        let mut cases: Vec<Vec<u8>> = vec![
            b"abcabcabcabcabcabcabcabcabcabc".to_vec(),
            [b"x".repeat(3), b"unique-middle".to_vec(), b"x".repeat(300)].concat(),
            (0..255u8).collect::<Vec<u8>>().repeat(40),
        ];
        let mut semi = Vec::new();
        for i in 0..2000u64 {
            semi.extend_from_slice(&(i / 7).to_le_bytes());
        }
        cases.push(semi);
        for input in cases {
            if compress(&input).is_some() {
                roundtrip(&input);
            }
        }
    }

    #[test]
    fn decompress_rejects_bad_distance() {
        // flags=0b10 -> literal 'a', then a match reaching back 9 bytes when
        // only 1 has been produced.
        let bad = [0b0000_0010u8, b'a', 9, 0, 0];
        let err = decompress(&bad, 10).unwrap_err();
        assert!(matches!(err, SlimError::Corrupt { .. }), "{err}");
        // Distance 0 is reserved.
        let zero = [0b0000_0001u8, 0, 0, 0];
        assert!(decompress(&zero, 4).is_err());
    }

    #[test]
    fn decompress_rejects_length_overrun() {
        let input = vec![0xCD; 1000];
        let c = compress(&input).unwrap();
        // Claiming a shorter raw length than the stream produces must fail
        // (either by overrun or by trailing input).
        assert!(decompress(&c, 999).is_err());
        // Claiming longer must fail with input exhausted.
        assert!(decompress(&c, 1001).is_err());
    }

    #[test]
    fn decompress_rejects_truncation_and_trailing() {
        let input = vec![0x11; 512];
        let c = compress(&input).unwrap();
        assert!(decompress(&c[..c.len() - 1], input.len()).is_err());
        let mut extended = c.clone();
        extended.push(0);
        assert!(decompress(&extended, input.len()).is_err());
    }

    #[test]
    fn bit_flip_sweep_never_panics() {
        let input: Vec<u8> = b"payload payload payload 1234567890 "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        let c = compress(&input).unwrap();
        for i in 0..c.len() {
            for bit in 0..8 {
                let mut m = c.clone();
                m[i] ^= 1 << bit;
                // Either decodes to wrong bytes of the right length or
                // errors; must never panic.
                let _ = decompress(&m, input.len());
            }
        }
    }
}
