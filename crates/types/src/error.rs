//! Error type shared across the SLIMSTORE crates.

use thiserror::Error;

/// Errors produced by SLIMSTORE components.
#[derive(Debug, Error)]
pub enum SlimError {
    /// An object requested from the object store does not exist.
    #[error("object not found: {0}")]
    ObjectNotFound(String),

    /// A byte-range read fell outside the object bounds.
    #[error("range {start}..{end} out of bounds for object {key} of {len} bytes")]
    RangeOutOfBounds {
        key: String,
        start: u64,
        end: u64,
        len: u64,
    },

    /// A serialized structure failed to decode.
    #[error("corrupt {what}: {detail}")]
    Corrupt { what: &'static str, detail: String },

    /// A chunk referenced by a recipe could not be located in any container.
    #[error("chunk {fp} unresolvable: {detail}")]
    ChunkUnresolvable { fp: String, detail: String },

    /// A container referenced by a recipe is missing from the container store.
    #[error("container {0} missing")]
    ContainerMissing(u64),

    /// The requested backup version does not exist (or was collected).
    #[error("version {0} not found")]
    VersionNotFound(u64),

    /// The requested file does not exist in the given version.
    #[error("file {file} not found in version {version}")]
    FileNotFound { file: String, version: u64 },

    /// Fault injected by a test or the simulated network.
    #[error("injected fault: {0}")]
    InjectedFault(String),

    /// A transient failure (simulated 5xx); the operation may succeed if
    /// retried.
    #[error("transient failure: {0}")]
    Transient(String),

    /// The object store rejected the request due to rate limiting; the
    /// operation may succeed if retried after backing off.
    #[error("throttled: {0}")]
    Throttled(String),

    /// An operation exhausted its retry/deadline budget without succeeding.
    #[error("{op} timed out after {attempts} attempts: {last}")]
    Timeout {
        op: String,
        attempts: u32,
        last: String,
    },

    /// A circuit breaker refused the call because every eligible endpoint
    /// is currently considered sick (Open state). The request was *not*
    /// issued; retrying after backing off may find a recovered endpoint or
    /// an admitted half-open probe slot.
    #[error("circuit open: {0}")]
    CircuitOpen(String),

    /// The request plane refused or abandoned the request because the
    /// deployment is saturated: admission queue full, tenant rate limit
    /// exceeded, deadline expired while queued, or the frontend is
    /// draining. The request was *not* executed; retrying after backing
    /// off may succeed.
    #[error("overloaded: {0}")]
    Overloaded(String),

    /// Configuration rejected at construction time.
    #[error("invalid configuration: {0}")]
    InvalidConfig(String),

    /// An I/O error from the local-disk tier of the restore cache.
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),
}

/// Convenience alias used across all SLIMSTORE crates.
pub type Result<T> = std::result::Result<T, SlimError>;

impl SlimError {
    /// Helper for constructing [`SlimError::Corrupt`].
    pub fn corrupt(what: &'static str, detail: impl Into<String>) -> Self {
        SlimError::Corrupt {
            what,
            detail: detail.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient and throttling failures are the retryable class; a
    /// [`SlimError::Timeout`] is retryable too because it wraps a retryable
    /// cause that merely ran out of budget at one layer — an outer layer with
    /// a larger budget may still succeed. [`SlimError::Overloaded`] is
    /// retryable by construction: the request plane guarantees a shed
    /// request was never executed, so resubmitting after backoff is safe,
    /// and the same reasoning covers [`SlimError::CircuitOpen`] — a breaker
    /// shed call never reached the endpoint. Permanent conditions (missing
    /// objects, corruption, injected hard faults, config errors) are not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SlimError::Transient(_)
                | SlimError::Throttled(_)
                | SlimError::Timeout { .. }
                | SlimError::Overloaded(_)
                | SlimError::CircuitOpen(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_taxonomy() {
        assert!(SlimError::Transient("503".into()).is_retryable());
        assert!(SlimError::Throttled("slow down".into()).is_retryable());
        assert!(SlimError::Timeout {
            op: "put k".into(),
            attempts: 5,
            last: "transient".into(),
        }
        .is_retryable());
        assert!(SlimError::Overloaded("queue full".into()).is_retryable());
        assert!(SlimError::CircuitOpen("endpoint 1 sick".into()).is_retryable());
        assert!(!SlimError::ObjectNotFound("k".into()).is_retryable());
        assert!(!SlimError::InjectedFault("put k".into()).is_retryable());
        assert!(!SlimError::corrupt("recipe", "bad magic").is_retryable());
        assert!(!SlimError::ContainerMissing(3).is_retryable());
    }
}
