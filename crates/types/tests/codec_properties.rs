//! Property tests of every persisted format: arbitrary structures must
//! round-trip bit-exactly, and recipe segment spans must always support
//! independent range decoding.

use proptest::prelude::*;
use slim_types::{
    ChunkRecord, ContainerEntry, ContainerId, ContainerMeta, FileBackupInfo, FileId, Fingerprint,
    Recipe, RecipeIndex, RecipeIndexEntry, SegmentRecipe, SuperChunkInfo, VersionManifest,
};

fn fp_strategy() -> impl Strategy<Value = Fingerprint> {
    proptest::array::uniform20(any::<u8>()).prop_map(Fingerprint::from_bytes)
}

fn record_strategy() -> impl Strategy<Value = ChunkRecord> {
    (
        fp_strategy(),
        any::<u64>(),
        1..u32::MAX,
        any::<u32>(),
        proptest::option::of((fp_strategy(), 1..u32::MAX, 2..64u32)),
    )
        .prop_map(|(fp, cid, size, dup, sc)| ChunkRecord {
            fp,
            container_id: ContainerId(cid),
            size,
            duplicate_times: dup,
            super_chunk: sc.map(
                |(first_chunk, first_chunk_size, member_count)| SuperChunkInfo {
                    first_chunk,
                    first_chunk_size,
                    member_count,
                },
            ),
        })
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    proptest::collection::vec(
        proptest::collection::vec(record_strategy(), 0..20).prop_map(SegmentRecipe::new),
        0..8,
    )
    .prop_map(|segments| Recipe { segments })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recipe_roundtrip(recipe in recipe_strategy()) {
        let (buf, spans) = recipe.encode();
        prop_assert_eq!(spans.len(), recipe.segments.len());
        let back = Recipe::decode(&buf).unwrap();
        prop_assert_eq!(&back, &recipe);
        // Every span decodes independently to its segment.
        for (i, span) in spans.iter().enumerate() {
            let block = &buf[span.offset as usize..(span.offset + span.len) as usize];
            let seg = SegmentRecipe::decode_block(block).unwrap();
            prop_assert_eq!(&seg, &recipe.segments[i]);
        }
    }

    #[test]
    fn recipe_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Recipe::decode(&bytes);
        let _ = RecipeIndex::decode(&bytes);
        let _ = ContainerMeta::decode(&bytes);
        let _ = VersionManifest::decode(&bytes);
    }

    #[test]
    fn recipe_index_roundtrip(
        entries in proptest::collection::vec(
            (fp_strategy(), any::<u32>(), any::<u32>(), any::<u32>()),
            0..40,
        )
    ) {
        let mut index = RecipeIndex::new();
        for (sample_fp, segment_idx, off, len) in entries {
            index.push(RecipeIndexEntry {
                sample_fp,
                segment_idx,
                span: slim_types::recipe::SegmentSpan { offset: off as u64, len: len as u64 },
            });
        }
        let back = RecipeIndex::decode(&index.encode()).unwrap();
        prop_assert_eq!(back, index);
    }

    #[test]
    fn container_meta_roundtrip(
        id in any::<u64>(),
        entries in proptest::collection::vec(
            (fp_strategy(), any::<u32>(), 1..u32::MAX, any::<bool>()),
            0..32,
        )
    ) {
        let entries: Vec<ContainerEntry> = entries
            .into_iter()
            .map(|(fp, offset, len, deleted)| ContainerEntry { fp, offset, len, deleted })
            .collect();
        let data_len = entries.iter().map(|e| e.len).fold(0u32, u32::wrapping_add);
        let meta = ContainerMeta::new(ContainerId(id), entries, data_len);
        let back = ContainerMeta::decode(&meta.encode()).unwrap();
        prop_assert_eq!(&back, &meta);
        // Accounting identities.
        prop_assert_eq!(back.live_chunks() + back.deleted_chunks(), back.total_chunks());
        prop_assert!(back.deleted_ratio() >= 0.0 && back.deleted_ratio() <= 1.0);
    }

    #[test]
    fn manifest_roundtrip(
        version in any::<u64>(),
        files in proptest::collection::vec(("[a-z/]{1,24}", any::<u64>(), any::<u64>()), 0..8),
        containers in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let manifest = VersionManifest {
            version,
            files: files
                .into_iter()
                .map(|(name, logical, stored)| FileBackupInfo {
                    file: FileId::new(name),
                    recipe_key: "k".into(),
                    recipe_index_key: "i".into(),
                    logical_bytes: logical,
                    stored_bytes: stored,
                    chunk_count: 0,
                    duplicate_count: 0,
                })
                .collect(),
            new_containers: containers.iter().copied().map(ContainerId).collect(),
            garbage_on_delete: containers.into_iter().map(ContainerId).collect(),
        };
        let back = VersionManifest::decode(&manifest.encode()).unwrap();
        prop_assert_eq!(back, manifest);
    }
}
