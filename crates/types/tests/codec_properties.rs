//! Property tests of every persisted format: arbitrary structures must
//! round-trip bit-exactly, and recipe segment spans must always support
//! independent range decoding.

use proptest::prelude::*;
use slim_types::{
    ChunkRecord, ContainerEntry, ContainerId, ContainerMeta, FileBackupInfo, FileId, Fingerprint,
    Recipe, RecipeIndex, RecipeIndexEntry, SegmentRecipe, SuperChunkInfo, VersionManifest,
};

fn fp_strategy() -> impl Strategy<Value = Fingerprint> {
    proptest::array::uniform20(any::<u8>()).prop_map(Fingerprint::from_bytes)
}

fn record_strategy() -> impl Strategy<Value = ChunkRecord> {
    (
        fp_strategy(),
        any::<u64>(),
        1..u32::MAX,
        any::<u32>(),
        proptest::option::of((fp_strategy(), 1..u32::MAX, 2..64u32)),
    )
        .prop_map(|(fp, cid, size, dup, sc)| ChunkRecord {
            fp,
            container_id: ContainerId(cid),
            size,
            duplicate_times: dup,
            super_chunk: sc.map(
                |(first_chunk, first_chunk_size, member_count)| SuperChunkInfo {
                    first_chunk,
                    first_chunk_size,
                    member_count,
                },
            ),
        })
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    proptest::collection::vec(
        proptest::collection::vec(record_strategy(), 0..20).prop_map(SegmentRecipe::new),
        0..8,
    )
    .prop_map(|segments| Recipe { segments })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recipe_roundtrip(recipe in recipe_strategy()) {
        let (buf, spans) = recipe.encode();
        prop_assert_eq!(spans.len(), recipe.segments.len());
        let back = Recipe::decode(&buf).unwrap();
        prop_assert_eq!(&back, &recipe);
        // Every span decodes independently to its segment.
        for (i, span) in spans.iter().enumerate() {
            let block = &buf[span.offset as usize..(span.offset + span.len) as usize];
            let seg = SegmentRecipe::decode_block(block).unwrap();
            prop_assert_eq!(&seg, &recipe.segments[i]);
        }
    }

    #[test]
    fn recipe_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Recipe::decode(&bytes);
        let _ = RecipeIndex::decode(&bytes);
        let _ = ContainerMeta::decode(&bytes);
        let _ = VersionManifest::decode(&bytes);
    }

    #[test]
    fn recipe_index_roundtrip(
        entries in proptest::collection::vec(
            (fp_strategy(), any::<u32>(), any::<u32>(), any::<u32>()),
            0..40,
        )
    ) {
        let mut index = RecipeIndex::new();
        for (sample_fp, segment_idx, off, len) in entries {
            index.push(RecipeIndexEntry {
                sample_fp,
                segment_idx,
                span: slim_types::recipe::SegmentSpan { offset: off as u64, len: len as u64 },
            });
        }
        let back = RecipeIndex::decode(&index.encode()).unwrap();
        prop_assert_eq!(back, index);
    }

    #[test]
    fn container_meta_roundtrip(
        id in any::<u64>(),
        // (stored len, extra raw bytes beyond stored, deleted): entries are
        // laid out sequentially, which is the only structurally valid shape
        // the decoder now accepts.
        chunks in proptest::collection::vec(
            (1..64_000u32, 0..64_000u32, any::<bool>()),
            0..32,
        ),
        fps in proptest::collection::vec(fp_strategy(), 32),
    ) {
        let mut offset = 0u32;
        let entries: Vec<ContainerEntry> = chunks
            .into_iter()
            .zip(fps)
            .map(|((len, extra, deleted), fp)| {
                let e = ContainerEntry {
                    fp,
                    offset,
                    len,
                    raw_len: len + extra,
                    deleted,
                };
                offset += len;
                e
            })
            .collect();
        let meta = ContainerMeta::new(ContainerId(id), entries, offset);
        let back = ContainerMeta::decode(&meta.encode()).unwrap();
        prop_assert_eq!(&back, &meta);
        // Accounting identities.
        prop_assert_eq!(back.live_chunks() + back.deleted_chunks(), back.total_chunks());
        prop_assert!(back.deleted_ratio() >= 0.0 && back.deleted_ratio() <= 1.0);
        prop_assert!(back.live_raw_bytes() >= back.live_bytes());
    }

    #[test]
    fn container_meta_rejects_out_of_bounds_entries(
        id in any::<u64>(),
        fp in fp_strategy(),
        offset in 1..u32::MAX,
        len in 1..u32::MAX,
    ) {
        // Any entry reaching beyond data_len (here: smaller than the entry's
        // own end, including u32-wrapping offset+len combinations) must
        // decode to Corrupt rather than a poisoned meta.
        let end = offset as u64 + len as u64;
        let data_len = (end - 1).min(u32::MAX as u64) as u32;
        let meta = ContainerMeta::new(
            ContainerId(id),
            vec![ContainerEntry { fp, offset, len, raw_len: len, deleted: false }],
            data_len,
        );
        prop_assert!(ContainerMeta::decode(&meta.encode()).is_err());
    }

    #[test]
    fn compress_roundtrips_or_declines(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // `None` means stored raw, which is always valid.
        if let Some(c) = slim_types::compress::compress(&bytes) {
            prop_assert!(c.len() < bytes.len());
            let back = slim_types::compress::decompress(&c, bytes.len()).unwrap();
            prop_assert_eq!(back, bytes);
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        raw_len in 0..16_384usize,
    ) {
        let _ = slim_types::compress::decompress(&bytes, raw_len);
    }

    #[test]
    fn manifest_roundtrip(
        version in any::<u64>(),
        files in proptest::collection::vec(("[a-z/]{1,24}", any::<u64>(), any::<u64>()), 0..8),
        containers in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let manifest = VersionManifest {
            version,
            files: files
                .into_iter()
                .map(|(name, logical, stored)| FileBackupInfo {
                    file: FileId::new(name),
                    recipe_key: "k".into(),
                    recipe_index_key: "i".into(),
                    logical_bytes: logical,
                    stored_bytes: stored,
                    chunk_count: 0,
                    duplicate_count: 0,
                })
                .collect(),
            new_containers: containers.iter().copied().map(ContainerId).collect(),
            garbage_on_delete: containers.into_iter().map(ContainerId).collect(),
        };
        let back = VersionManifest::decode(&manifest.encode()).unwrap();
        prop_assert_eq!(back, manifest);
    }
}
