//! Disaster recovery drill: after many backup generations and offline space
//! management, restore both the newest version (the fast path the system
//! optimizes for) and an old version (served through the global index after
//! reverse deduplication relocated its chunks).
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use slim_oss::NetworkModel;
use slim_types::{FileId, VersionId};
use slimstore::SlimStoreBuilder;

fn mutate(data: &mut Vec<u8>, round: u64) {
    // Rewrite a hot region; the cold tail stays stable.
    let len = data.len();
    let at = (round as usize * 7919) % (len / 3);
    for b in &mut data[at..(at + len / 20).min(len)] {
        *b = b.wrapping_add(round as u8 + 1);
    }
}

fn main() -> slim_types::Result<()> {
    let store = SlimStoreBuilder::in_memory()
        .with_network(NetworkModel::oss_like())
        .build()?;

    let file = FileId::new("vm/disk.img");
    let mut image = {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
        let mut buf = vec![0u8; 24 * 1024 * 1024];
        rng.fill_bytes(&mut buf);
        buf
    };

    let generations = 10u64;
    let mut history = Vec::new();
    println!("taking {generations} backup generations with offline space management...");
    for g in 0..generations {
        let report = store.backup_version(vec![(file.clone(), image.clone())])?;
        store.run_gnode_cycle(report.version)?;
        history.push(image.clone());
        mutate(&mut image, g);
    }

    // Old versions shed weight as the G-node moves shared data forward.
    let v0_live = store.gnode().version_occupied_bytes(VersionId(0))?;
    println!(
        "version 0's containers hold {:.1} MiB live (of {:.1} MiB originally)\n",
        v0_live as f64 / (1024.0 * 1024.0),
        history[0].len() as f64 / (1024.0 * 1024.0),
    );

    // Drill 1: newest version — the optimized path (SCC + FV cache + LAW
    // prefetching).
    let newest = VersionId(generations - 1);
    let (bytes, stats) = store.restore_file(&file, newest)?;
    assert_eq!(bytes, history[generations as usize - 1]);
    println!(
        "newest ({newest}): {:.1} MB/s, {} container reads, {} prefetch hits",
        stats.throughput_mbps(),
        stats.containers_read,
        stats.prefetch_hits,
    );

    // Drill 2: oldest version — relocated chunks resolve through the global
    // fingerprint index (the cost the system deliberately shifts to rarely
    // restored old data).
    let (bytes, stats) = store.restore_file(&file, VersionId(0))?;
    assert_eq!(bytes, history[0]);
    println!(
        "oldest (v0):    {:.1} MB/s, {} container reads, {} relocation lookups",
        stats.throughput_mbps(),
        stats.containers_read,
        stats.relocation_lookups,
    );

    println!("\nboth drills verified byte-identical — recovery plan holds");
    Ok(())
}
