//! Elastic scaling: an enterprise backs up thousands of files concurrently.
//! L-nodes are stateless, so the computing layer scales by just deploying
//! more of them — throughput grows with concurrent jobs (Fig 10).
//!
//! ```sh
//! cargo run --release --example enterprise_fleet
//! ```

use std::time::Instant;

use slim_oss::NetworkModel;
use slim_workload::{Workload, WorkloadConfig};
use slimstore::SlimStoreBuilder;

fn main() -> slim_types::Result<()> {
    // R-Data-shaped workload: many files, high duplication between versions.
    let mut cfg = WorkloadConfig::rdata(0.3);
    cfg.versions = 2;
    let workload = Workload::new(cfg.clone());
    let v0: Vec<_> = workload
        .version_files(0)
        .map(|f| (f.file, f.data))
        .collect();
    let v1: Vec<_> = workload
        .version_files(1)
        .map(|f| (f.file, f.data))
        .collect();
    let v1_bytes: u64 = v1.iter().map(|(_, d)| d.len() as u64).sum();

    println!(
        "fleet backup: {} files, {:.1} MiB per backup window\n",
        cfg.files,
        v1_bytes as f64 / (1024.0 * 1024.0)
    );

    for jobs in [1usize, 4, 8] {
        // Fresh deployment per configuration to keep the comparison clean.
        let store = SlimStoreBuilder::in_memory()
            .with_network(NetworkModel::oss_like())
            .build()?;
        let nodes = jobs.div_ceil(4);
        store.scale_l_nodes(nodes)?;
        store.backup_version_with_jobs(v0.clone(), jobs)?; // initial full backup
        let t = Instant::now();
        let report = store.backup_version_with_jobs(v1.clone(), jobs)?;
        let elapsed = t.elapsed();
        println!(
            "{jobs:>2} concurrent jobs on {nodes} L-node(s): {:>7.1} MB/s (dedup {:.1}%)",
            v1_bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64(),
            report.stats.dedup_ratio() * 100.0,
        );

        // Parallel restore of the whole fleet.
        let t = Instant::now();
        let restored = store.restore_version(report.version, jobs)?;
        let bytes: u64 = restored.iter().map(|(_, d, _)| d.len() as u64).sum();
        println!(
            "   restore with {jobs} jobs: {:>7.1} MB/s",
            bytes as f64 / (1024.0 * 1024.0) / t.elapsed().as_secs_f64(),
        );
        for ((f, expected), (rf, actual, _)) in v1.iter().zip(&restored) {
            assert_eq!(f, rf);
            assert_eq!(expected, actual, "restore mismatch for {f}");
        }
    }
    println!("\nall restores verified byte-identical");
    Ok(())
}
