//! Multi-tenant service: many users share one OSS bucket, each with a fully
//! isolated SLIMSTORE deployment — the paper's cloud-backup service model,
//! where the similar-file index and global fingerprint index are per user.
//!
//! All traffic flows through the `slim-frontend` request plane: a
//! `TenantStoreManager` resolves tenant names to deployments, and the
//! `Frontend` applies admission control (per-tenant rate limits, bounded
//! queues) and weighted fair scheduling across priority classes (restores
//! outrank backups outrank G-node maintenance) before anything touches a
//! store.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use slim_frontend::{FrontendBuilder, FrontendConfig, Request, TenantPolicy};
use slim_oss::{ObjectStore, Oss};
use slim_types::{FileId, SlimError, VersionId};
use slimstore::TenantStoreManager;

fn main() -> slim_types::Result<()> {
    // One shared bucket for the whole service; the manager stamps every
    // deployment out of the same template, isolated by key namespace.
    let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
    let manager = Arc::new(TenantStoreManager::new(bucket.clone()));

    // The request plane: "acme" pays for twice the scheduling weight.
    let frontend = FrontendBuilder::new(manager.clone())
        .with_config(FrontendConfig::default().with_workers(3))
        .with_tenant_policy("acme", TenantPolicy::default().with_weight(2))
        .start()?;

    let tenants = ["acme", "globex", "initech"];
    let file = FileId::new("db/main.sqlite");
    for (i, tenant) in tenants.iter().enumerate() {
        // Every tenant uses the same file path and version numbers —
        // namespaces keep them apart.
        let v0 = format!("{tenant} confidential row set {i}")
            .into_bytes()
            .repeat(3000);
        let mut v1 = v0.clone();
        v1.extend_from_slice(format!("{tenant} appended transactions").as_bytes());

        let r0 = frontend
            .submit(
                tenant,
                Request::Backup {
                    files: vec![(file.clone(), v0)],
                    jobs: 1,
                },
            )?
            .wait()?
            .into_backup()?;
        let r1 = frontend
            .submit(
                tenant,
                Request::Backup {
                    files: vec![(file.clone(), v1.clone())],
                    jobs: 1,
                },
            )?
            .wait()?
            .into_backup()?;
        // Offline dedup rides the maintenance class: under foreground
        // pressure it waits — never the other way around.
        frontend
            .submit(
                tenant,
                Request::GNodeCycle {
                    version: r1.version,
                },
            )?
            .wait()?
            .into_maintenance()?;
        let (restored, _) = frontend
            .submit(
                tenant,
                Request::RestoreFile {
                    file: file.clone(),
                    version: r1.version,
                },
            )?
            .wait()?
            .into_file()?;
        assert_eq!(restored, v1);
        println!(
            "tenant {tenant:<8} v{}..v{}: dedup {:>5.1}%, integrity {}",
            r0.version.0,
            r1.version.0,
            r1.stats.dedup_ratio() * 100.0,
            if manager.get_or_create(tenant)?.scrub().is_ok() {
                "ok"
            } else {
                "FAILED"
            },
        );
    }

    // QoS contracts are live-editable: cap initech at 2 requests/second
    // (burst 2), then rapid-fire four restores. The overflow is shed at
    // the door with a retryable `Overloaded` — not queued forever.
    frontend.set_tenant_policy("initech", TenantPolicy::default().with_rate(2.0, 2.0))?;
    let mut tickets = Vec::new();
    let mut shed = 0;
    for _ in 0..4 {
        match frontend.submit(
            "initech",
            Request::RestoreFile {
                file: file.clone(),
                version: VersionId(1),
            },
        ) {
            Ok(ticket) => tickets.push(ticket),
            Err(SlimError::Overloaded(_)) => shed += 1,
            Err(other) => return Err(other),
        }
    }
    for ticket in tickets {
        ticket.wait()?.into_file()?;
    }
    assert!(shed > 0);
    println!("\ninitech rapid-fire: {shed} of 4 restores shed by the 2/s rate limit");
    frontend.set_tenant_policy("initech", TenantPolicy::default())?;

    // Cross-tenant isolation check: each tenant's restore resolves against
    // its own namespace and differs from every other tenant's.
    let mut payloads = Vec::new();
    for tenant in tenants {
        let (bytes, _) = frontend
            .submit(
                tenant,
                Request::RestoreFile {
                    file: file.clone(),
                    version: VersionId(1),
                },
            )?
            .wait()?
            .into_file()?;
        payloads.push(bytes);
    }
    assert!(payloads.windows(2).all(|w| w[0] != w[1]));

    let snap = frontend.telemetry_snapshot();
    println!(
        "{} tenants share one bucket ({} objects) with zero cross-tenant visibility",
        tenants.len(),
        bucket.list("tenants/").len(),
    );
    println!(
        "frontend: {} admitted, {} completed, {} shed",
        snap.counter("frontend.admitted"),
        snap.counter("frontend.completed"),
        snap.counter("frontend.shed"),
    );
    frontend.shutdown();
    Ok(())
}
