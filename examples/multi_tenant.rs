//! Multi-tenant service: many users share one OSS bucket, each with a fully
//! isolated SLIMSTORE deployment — the paper's cloud-backup service model,
//! where the similar-file index and global fingerprint index are per user.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use slim_oss::{ObjectStore, Oss};
use slim_types::{FileId, VersionId};
use slimstore::SlimStoreBuilder;

fn main() -> slim_types::Result<()> {
    // One shared bucket for the whole service.
    let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());

    let tenants = ["acme", "globex", "initech"];
    for (i, tenant) in tenants.iter().enumerate() {
        let store = SlimStoreBuilder::in_memory()
            .with_object_store(bucket.clone())
            .with_tenant(tenant)?
            .build()?;
        // Every tenant uses the same file path and version numbers —
        // namespaces keep them apart.
        let file = FileId::new("db/main.sqlite");
        let v0 = format!("{tenant} confidential row set {i}")
            .into_bytes()
            .repeat(3000);
        let mut v1 = v0.clone();
        v1.extend_from_slice(format!("{tenant} appended transactions").as_bytes());

        let r0 = store.backup_version(vec![(file.clone(), v0)])?;
        let r1 = store.backup_version(vec![(file.clone(), v1.clone())])?;
        store.run_gnode_cycle(r1.version)?;
        let (restored, _) = store.restore_file(&file, r1.version)?;
        assert_eq!(restored, v1);
        println!(
            "tenant {tenant:<8} v{}..v{}: dedup {:>5.1}%, integrity {}",
            r0.version.0,
            r1.version.0,
            r1.stats.dedup_ratio() * 100.0,
            if store.scrub().is_ok() {
                "ok"
            } else {
                "FAILED"
            },
        );
    }

    // Cross-tenant isolation check: reopening one tenant sees only its own
    // data, and its restore differs from every other tenant's.
    let mut payloads = Vec::new();
    for tenant in tenants {
        let store = SlimStoreBuilder::in_memory()
            .with_object_store(bucket.clone())
            .with_tenant(tenant)?
            .build()?;
        let (bytes, _) = store.restore_file(&FileId::new("db/main.sqlite"), VersionId(1))?;
        payloads.push(bytes);
    }
    assert!(payloads.windows(2).all(|w| w[0] != w[1]));
    println!(
        "\n{} tenants share one bucket ({} objects) with zero cross-tenant visibility",
        tenants.len(),
        bucket.list("tenants/").len(),
    );
    Ok(())
}
