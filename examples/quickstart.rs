//! Quickstart: back up three versions of a file, run the offline space
//! manager, and restore everything.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slim_types::FileId;
use slimstore::SlimStoreBuilder;

fn main() -> slim_types::Result<()> {
    // An in-memory deployment (swap in `with_network(NetworkModel::oss_like())`
    // to simulate cloud-object-storage latencies).
    let store = SlimStoreBuilder::in_memory().build()?;

    let file = FileId::new("docs/report.md");
    let v0 = b"# Quarterly report\n\nAll systems nominal.\n".repeat(2000);
    let mut v1 = v0.clone();
    v1.extend_from_slice(b"\n## Addendum\nOne incident, resolved.\n");
    let mut v2 = v1.clone();
    v2.extend_from_slice(b"\n## Second addendum\nCustomer happy.\n");

    // Back up three versions.
    for (i, content) in [&v0, &v1, &v2].into_iter().enumerate() {
        let report = store.backup_version(vec![(file.clone(), content.clone())])?;
        println!(
            "backed up {} ({} files, {:.1} KiB logical, dedup ratio {:.1}%)",
            report.version,
            report.files,
            report.stats.logical_bytes as f64 / 1024.0,
            report.stats.dedup_ratio() * 100.0,
        );
        // The G-node runs offline: exact dedup + sparse container compaction.
        store.run_gnode_cycle(report.version)?;
        assert_eq!(report.version.0, i as u64);
    }

    // Restore and verify every version.
    for (v, expected) in [&v0, &v1, &v2].into_iter().enumerate() {
        let (bytes, stats) = store.restore_file(&file, slim_types::VersionId(v as u64))?;
        assert_eq!(&bytes, expected);
        println!(
            "restored v{v}: {:.1} KiB from {} container reads",
            bytes.len() as f64 / 1024.0,
            stats.containers_read,
        );
    }

    let space = store.space_report();
    println!(
        "space on OSS: {:.1} KiB containers + {:.1} KiB recipes (3 versions, {:.1} KiB logical)",
        space.container_bytes as f64 / 1024.0,
        space.recipe_bytes as f64 / 1024.0,
        (v0.len() + v1.len() + v2.len()) as f64 / 1024.0,
    );
    Ok(())
}
