//! The paper's motivating scenario: a database uploads full snapshots of its
//! table files on a schedule. SLIMSTORE dedups the incremental changes,
//! keeps the latest versions fast to restore, and drains the storage cost of
//! old versions over time.
//!
//! ```sh
//! cargo run --release --example database_backup
//! ```

use slim_oss::NetworkModel;
use slim_types::VersionId;
use slim_workload::{Workload, WorkloadConfig};
use slimstore::SlimStoreBuilder;

fn main() -> slim_types::Result<()> {
    // S-DB-shaped workload: simulated database table files evolved by
    // insert/update/delete, duplication ratio 0.65–0.95 between versions.
    let mut cfg = WorkloadConfig::sdb(0.2);
    cfg.versions = 10;
    let workload = Workload::new(cfg.clone());

    // OSS-like network: per-request latency, bounded per-channel bandwidth.
    let store = SlimStoreBuilder::in_memory()
        .with_network(NetworkModel::oss_like())
        .build()?;
    store.scale_l_nodes(2)?;

    println!(
        "backing up {} table files x {} nightly versions...\n",
        cfg.files, cfg.versions
    );
    for v in 0..cfg.versions {
        let files: Vec<_> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        let report = store.backup_version_with_jobs(files, 4)?;
        store.run_gnode_cycle(report.version)?;
        let space = store.space_report();
        println!(
            "night {:>2}: {:>7.1} MiB logical, dedup {:>5.1}%, {:>6.1} MB/s, store now {:>7.1} MiB",
            v,
            report.stats.logical_bytes as f64 / (1024.0 * 1024.0),
            report.stats.dedup_ratio() * 100.0,
            report.stats.throughput_mbps(),
            space.container_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    // Old versions cost less over time: reverse dedup + compaction moved
    // shared data forward.
    let v0_bytes = store.gnode().version_occupied_bytes(VersionId(0))?;
    println!(
        "\nversion 0's containers now hold only {:.1} MiB of live data",
        v0_bytes as f64 / (1024.0 * 1024.0)
    );

    // Keep a one-week retention window.
    let retention = store.retain_last(7)?;
    println!(
        "retention sweep reclaimed {:.1} MiB ({} containers, {} stale redundancy objects); versions kept: {:?}",
        retention.bytes_reclaimed as f64 / (1024.0 * 1024.0),
        retention.containers_deleted,
        retention.redundancy_objects_dropped(),
        store.versions().iter().map(|v| v.0).collect::<Vec<_>>(),
    );

    // Point-in-time restore of the latest version, fast path.
    let latest = *store.versions().last().expect("versions remain");
    let restored = store.restore_version(latest, 4)?;
    let total: u64 = restored.iter().map(|(_, d, _)| d.len() as u64).sum();
    let reads: u64 = restored.iter().map(|(_, _, s)| s.containers_read).sum();
    println!(
        "restored {} ({} files, {:.1} MiB) with {} container reads",
        latest,
        restored.len(),
        total as f64 / (1024.0 * 1024.0),
        reads,
    );
    Ok(())
}
